// Tests for the job server's durability layer: the write-ahead journal
// (framing, torn-tail replay, group-commit shedding), crash recovery
// (re-admission, checkpoint resume, restored history), idempotent
// resubmission, overload shedding (RETRY-AFTER) and the resilient client
// (deterministic backoff, reconnect across a server restart).
//
// The spine is an in-process crash matrix mirroring
// ckpt_crash_matrix_test.cpp one layer up: a finished run's journal is
// truncated to every record-count prefix — i.e. the server "crashes"
// right after each SUBMIT/START/GATE/DONE record — and a fresh server
// recovering from that prefix must always converge to the single-shot
// oracle digest.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "ckpt/store.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/job_spec.hpp"
#include "svc/launcher.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"

namespace prs::svc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JournalRecord submit_record(int id, const std::string& tenant,
                            const JobSpec& spec,
                            const std::string& dedup = "") {
  JournalRecord rec;
  rec.type = JournalRecordType::kSubmit;
  rec.job_id = id;
  rec.tenant = tenant;
  rec.dedup = dedup;
  rec.spec_tokens = spec.to_tokens();
  return rec;
}

void write_journal_file(const std::string& path,
                        const std::vector<JournalRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (const JournalRecord& rec : records) out << encode_journal_record(rec);
  ASSERT_TRUE(out.good());
}

JobSpec small_cmeans(int iterations) {
  JobSpec spec;
  spec.app = "cmeans";
  spec.nodes = 1;
  spec.gpus = 1;
  spec.points = 1500;
  spec.dims = 6;
  spec.clusters = 3;
  spec.iterations = iterations;
  spec.functional = true;
  spec.seed = 7;
  return spec;
}

JobServer::Config server_cfg(int cards, int slots, Journal* journal = nullptr,
                             int max_queue = 32) {
  JobServer::Config cfg;
  cfg.pool.cards = cards;
  cfg.pool.slots_per_card = slots;
  cfg.admission.max_queue_depth = max_queue;
  cfg.journal = journal;
  return cfg;
}

/// The digest oracle: the job exactly as prs_run runs it single-shot.
LaunchOutcome run_single_shot(const JobSpec& spec) {
  sim::Simulator sim;
  core::NodeConfig node = spec.node_config();
  core::Cluster cluster(sim, spec.nodes, node);
  core::JobConfig cfg = spec.job_config();
  auto policy = core::make_policy(spec.policy);
  cfg.policy = policy.get();
  Rng rng(spec.seed);
  return run_job_spec(spec, cluster, node, cfg, rng, nullptr);
}

// ------------------------------------------------------------ journal codec

TEST(JournalCodec, AllRecordTypesRoundTrip) {
  const JobSpec spec = small_cmeans(4);
  std::vector<JournalRecord> in;
  in.push_back(submit_record(3, "alice", spec, "key-1"));
  JournalRecord start;
  start.type = JournalRecordType::kStart;
  start.job_id = 3;
  in.push_back(start);
  JournalRecord gate;
  gate.type = JournalRecordType::kGate;
  gate.job_id = 3;
  gate.stages = 17;
  in.push_back(gate);
  JournalRecord done;
  done.type = JournalRecordType::kDone;
  done.job_id = 3;
  done.digest = "00aabbcc";
  done.lines = {"result line 1", "result line 2"};
  in.push_back(done);
  JournalRecord fail;
  fail.type = JournalRecordType::kFail;
  fail.job_id = 4;
  fail.error = "device out of memory";
  in.push_back(fail);
  JournalRecord cancel;
  cancel.type = JournalRecordType::kCancel;
  cancel.job_id = 5;
  cancel.error = "cancelled at gate";
  in.push_back(cancel);

  std::string bytes;
  for (const JournalRecord& rec : in) bytes += encode_journal_record(rec);
  const JournalReplay replay = decode_journal(bytes);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.bytes_consumed, bytes.size());
  ASSERT_EQ(replay.records.size(), in.size());
  EXPECT_EQ(replay.records[0].tenant, "alice");
  EXPECT_EQ(replay.records[0].dedup, "key-1");
  EXPECT_EQ(replay.records[0].spec_tokens, spec.to_tokens());
  EXPECT_EQ(replay.records[0].job_id, 3);
  EXPECT_EQ(replay.records[1].type, JournalRecordType::kStart);
  EXPECT_EQ(replay.records[2].stages, 17);
  EXPECT_EQ(replay.records[3].digest, "00aabbcc");
  EXPECT_EQ(replay.records[3].lines,
            (std::vector<std::string>{"result line 1", "result line 2"}));
  EXPECT_EQ(replay.records[4].error, "device out of memory");
  EXPECT_EQ(replay.records[5].type, JournalRecordType::kCancel);

  // The spec tokens stored in the journal parse back to the same spec.
  const JobSpec parsed = parse_job_spec_tokens(replay.records[0].spec_tokens);
  EXPECT_EQ(parsed.app, spec.app);
  EXPECT_EQ(parsed.iterations, spec.iterations);
  EXPECT_EQ(parsed.seed, spec.seed);
}

TEST(JournalCodec, TornTailStopsCleanlyAtEveryTruncation) {
  std::vector<JournalRecord> in;
  in.push_back(submit_record(1, "a", small_cmeans(3)));
  JournalRecord start;
  start.type = JournalRecordType::kStart;
  start.job_id = 1;
  in.push_back(start);
  const std::string first = encode_journal_record(in[0]);
  std::string bytes = first + encode_journal_record(in[1]);

  // Every proper prefix decodes only the records that are fully durable;
  // a mid-record cut is a torn tail, never an exception.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const JournalReplay replay = decode_journal(bytes.substr(0, cut));
    const std::size_t expect_records = cut < first.size() ? 0u : 1u;
    EXPECT_EQ(replay.records.size(), expect_records) << "cut=" << cut;
    if (cut != 0 && cut != first.size()) {
      EXPECT_TRUE(replay.torn_tail) << "cut=" << cut;
    }
  }

  // A flipped payload byte fails the checksum and stops the replay there.
  std::string corrupt = bytes;
  corrupt[first.size() - 1] ^= 0x5a;  // last payload byte of record 1
  const JournalReplay replay = decode_journal(corrupt);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.records.size(), 0u);
}

TEST(Journal, AppendsSurviveAcrossIncarnations) {
  const fs::path dir = fresh_dir("svc_journal_reopen");
  Journal::Config cfg;
  cfg.path = (dir / "journal.wal").string();
  {
    Journal journal(cfg);
    EXPECT_TRUE(journal.append_durable(submit_record(1, "a", small_cmeans(3))));
    JournalRecord gate;
    gate.type = JournalRecordType::kGate;
    gate.job_id = 1;
    gate.stages = 2;
    EXPECT_TRUE(journal.append_async(gate));
    journal.flush();
    EXPECT_EQ(journal.records_appended(), 2u);
    EXPECT_EQ(journal.records_shed(), 0u);
    // Replay sees this incarnation's own flushed records.
    EXPECT_EQ(journal.replay().records.size(), 2u);
  }
  // A second incarnation appends after the first's records.
  {
    Journal journal(cfg);
    EXPECT_EQ(journal.replay().records.size(), 2u);
    JournalRecord done;
    done.type = JournalRecordType::kDone;
    done.job_id = 1;
    done.digest = "ff";
    EXPECT_TRUE(journal.append_durable(done));
  }
  const JournalReplay replay = read_journal(cfg.path);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[2].digest, "ff");
}

TEST(Journal, SaturatedQueueShedsInsteadOfBlocking) {
  const fs::path dir = fresh_dir("svc_journal_shed");
  Journal::Config cfg;
  cfg.path = (dir / "journal.wal").string();
  cfg.max_pending = 2;
  Journal journal(cfg);
  journal.pause_flush(true);
  JournalRecord gate;
  gate.type = JournalRecordType::kGate;
  gate.job_id = 1;
  EXPECT_TRUE(journal.append_async(gate));
  EXPECT_TRUE(journal.append_async(gate));
  // Queue is at the bound: both flavours shed, nobody wedges.
  EXPECT_FALSE(journal.append_async(gate));
  EXPECT_FALSE(journal.append_durable(submit_record(1, "a", small_cmeans(3))));
  EXPECT_EQ(journal.records_shed(), 2u);
  journal.pause_flush(false);
  journal.flush();
  EXPECT_EQ(journal.records_appended(), 2u);
  // Drained: appends (durable ones included) work again.
  EXPECT_TRUE(journal.append_durable(submit_record(1, "a", small_cmeans(3))));
}

// -------------------------------------------------------- client primitives

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndSeeded) {
  RetryPolicy policy;
  policy.retries = 6;
  policy.base_ms = 50;
  policy.cap_ms = 400;
  policy.seed = 9;
  int expected_raw = 50;
  for (int attempt = 1; attempt <= policy.retries; ++attempt) {
    const int a = backoff_ms(policy, attempt);
    const int b = backoff_ms(policy, attempt);
    EXPECT_EQ(a, b) << "same (policy, attempt) must give the same sleep";
    EXPECT_GE(a, expected_raw / 2) << "attempt " << attempt;
    EXPECT_LE(a, expected_raw) << "attempt " << attempt;
    expected_raw = std::min(expected_raw * 2, policy.cap_ms);
  }
  // The printed schedule is the same function, so it matches backoff_ms.
  const std::string schedule = backoff_schedule(policy);
  EXPECT_EQ(schedule.find(std::to_string(backoff_ms(policy, 1)) + "ms"), 0u)
      << schedule;
  RetryPolicy other = policy;
  other.seed = 10;
  bool any_differs = false;
  for (int attempt = 1; attempt <= policy.retries; ++attempt) {
    any_differs |= backoff_ms(policy, attempt) != backoff_ms(other, attempt);
  }
  EXPECT_TRUE(any_differs) << "different seeds should not stampede in step";
}

TEST(RetryPolicy, RetryAfterHeaderParses) {
  EXPECT_EQ(retry_after_ms("RETRY-AFTER 250 code=queue_full busy\n"), 250);
  EXPECT_EQ(retry_after_ms("OK id=3\n"), -1);
  EXPECT_EQ(retry_after_ms("ERR code=bad_request nope\n"), -1);
  EXPECT_EQ(retry_after_ms("RETRY-AFTER nope\n"), -1);
}

// ----------------------------------------------------- idempotent submission

TEST(JobServer, DedupResubmitReturnsTheSameJobOnce) {
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  const JobSpec spec = small_cmeans(4);
  auto first = server.submit("a", spec, "retry-key");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.deduped);
  // The classic lost-reply retry: same tenant, same key.
  auto replay = server.submit("a", spec, "retry-key");
  EXPECT_TRUE(replay.ok());
  EXPECT_TRUE(replay.deduped);
  EXPECT_EQ(replay.job_id, first.job_id);
  // No double admission: one job, one quota charge.
  EXPECT_EQ(server.tenant_account("a").jobs_submitted, 1u);
  EXPECT_EQ(server.tenant_account("a").queued, 1);
  EXPECT_NE(server.metrics_json().find("\"svc.submit_dedup_hits\":1"),
            std::string::npos);
  // A different key is a different job; the key is scoped per tenant.
  auto other = server.submit("a", spec, "other-key");
  EXPECT_FALSE(other.deduped);
  EXPECT_NE(other.job_id, first.job_id);
  server.add_tenant("b", TenantQuota{});
  auto other_tenant = server.submit("b", spec, "retry-key");
  EXPECT_FALSE(other_tenant.deduped);
  EXPECT_NE(other_tenant.job_id, first.job_id);
  server.run_until_idle();
  // Replaying after completion still returns the (now terminal) job.
  auto late = server.submit("a", spec, "retry-key");
  EXPECT_TRUE(late.deduped);
  EXPECT_EQ(late.job_id, first.job_id);
  EXPECT_EQ(server.status(late.job_id).state, JobState::kDone);
}

// ------------------------------------------------------------ load shedding

TEST(JobServer, SaturatedJournalShedsSubmitsWithRetryAfter) {
  const fs::path dir = fresh_dir("svc_journal_busy");
  Journal::Config jcfg;
  jcfg.path = (dir / "journal.wal").string();
  jcfg.max_pending = 1;
  Journal journal(jcfg);
  JobServer server(server_cfg(1, 2, &journal));
  server.add_tenant("a", TenantQuota{});

  // Freeze the flusher and fill the queue so the durable SUBMIT append
  // must shed instead of blocking the client.
  journal.pause_flush(true);
  JournalRecord filler;
  filler.type = JournalRecordType::kGate;
  filler.job_id = 99;
  ASSERT_TRUE(journal.append_async(filler));
  auto shed = server.submit("a", small_cmeans(3));
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.decision.code, AdmitCode::kJournalBusy);
  EXPECT_GT(shed.retry_after_ms, 0);
  EXPECT_TRUE(admit_code_retryable(shed.decision.code));
  EXPECT_NE(server.metrics_json().find("\"svc.journal_shed\":1"),
            std::string::npos);

  // The protocol surfaces it as RETRY-AFTER, not a hard ERR.
  bool shutdown = false;
  const std::string resp = handle_request(
      server, "SUBMIT tenant=a " + small_cmeans(3).to_tokens(), &shutdown);
  EXPECT_EQ(resp.rfind("RETRY-AFTER ", 0), 0u) << resp;
  EXPECT_NE(resp.find("code=journal_busy"), std::string::npos) << resp;
  EXPECT_GT(retry_after_ms(resp), 0);

  // Once the journal drains, the same submit is accepted — and no job id
  // was burned by the shed attempts (ids stay dense).
  journal.pause_flush(false);
  journal.flush();
  auto ok = server.submit("a", small_cmeans(3));
  ASSERT_TRUE(ok.ok()) << ok.decision.message;
  EXPECT_EQ(ok.job_id, 1);
  server.run_until_idle();
  EXPECT_EQ(server.status(ok.job_id).state, JobState::kDone);
}

// ---------------------------------------------------------------- recovery

TEST(JobServer, RecoverReAdmitsQueuedJobsInAdmissionOrder) {
  const fs::path dir = fresh_dir("svc_recover_queued");
  Journal::Config jcfg;
  jcfg.path = (dir / "journal.wal").string();
  const JobSpec spec_a = small_cmeans(4);
  JobSpec spec_b = small_cmeans(3);
  spec_b.seed = 21;
  {
    // Incarnation 1: admit two jobs but never start the pump — the daemon
    // "crashes" with both still queued. The destructor's shutdown
    // cancellations are not journaled, so the journal keeps them incomplete.
    Journal journal(jcfg);
    JobServer server(server_cfg(1, 2, &journal));
    server.add_tenant("a", TenantQuota{});
    ASSERT_TRUE(server.submit("a", spec_a, "job-a").ok());
    ASSERT_TRUE(server.submit("a", spec_b).ok());
  }
  // Incarnation 2 replays the journal and re-runs both to completion.
  Journal journal(jcfg);
  JobServer server(server_cfg(1, 2, &journal));
  server.add_tenant("a", TenantQuota{});
  const auto stats = server.recover();
  EXPECT_EQ(stats.journal_records, 2);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.jobs_recovered, 2);
  EXPECT_EQ(stats.jobs_restored, 0);
  EXPECT_EQ(stats.jobs_failed, 0);
  EXPECT_EQ(server.tenant_account("a").queued, 2);

  // Original ids, original order, recovered flag set.
  const JobStatus qa = server.status(1);
  const JobStatus qb = server.status(2);
  EXPECT_TRUE(qa.recovered);
  EXPECT_TRUE(qb.recovered);
  EXPECT_EQ(qa.state, JobState::kQueued);

  // The dedup map survives the crash: a client retrying its SUBMIT after
  // the restart still gets job 1, not a duplicate.
  auto replay = server.submit("a", spec_a, "job-a");
  EXPECT_TRUE(replay.deduped);
  EXPECT_EQ(replay.job_id, 1);

  server.run_until_idle();
  EXPECT_EQ(server.status(1).digest, run_single_shot(spec_a).digest);
  EXPECT_EQ(server.status(2).digest, run_single_shot(spec_b).digest);
  // New submissions continue after the recovered id range.
  auto fresh = server.submit("a", small_cmeans(2));
  EXPECT_EQ(fresh.job_id, 3);
  server.run_until_idle();
}

TEST(JobServer, RecoverResumesStartedJobFromItsCheckpoint) {
  const fs::path dir = fresh_dir("svc_recover_resume");
  const fs::path ckpt_dir = dir / "ckpt";
  Journal::Config jcfg;
  jcfg.path = (dir / "journal.wal").string();
  // Stencil, not cmeans: a functional cmeans run converges after a
  // handful of iterations, but this test needs a job long enough to crash
  // mid-flight with checkpoints behind it and plenty of work ahead —
  // Jacobi relaxation of a random grid keeps iterating far past 200.
  JobSpec base;
  base.app = "stencil";
  base.nodes = 1;
  base.dims = 24;   // grid rows
  base.cols = 24;   // grid cols
  base.iterations = 200;
  base.functional = true;
  base.seed = 7;
  JobSpec spec = base;
  spec.checkpoint_every = 2;
  spec.checkpoint_dir = ckpt_dir.string();
  const LaunchOutcome oracle = run_single_shot(base);

  // Baseline: the full run's stage count on an uninterrupted server.
  int full_stages = 0;
  {
    JobServer server(server_cfg(1, 2));
    server.add_tenant("a", TenantQuota{});
    auto res = server.submit("a", base);
    ASSERT_TRUE(res.ok());
    server.run_until_idle();
    full_stages = server.status(res.job_id).stages;
    ASSERT_GT(full_stages, base.iterations);
  }

  {
    // Incarnation 1: run the job past several checkpoints, then crash
    // (destructor — the shutdown cancel is not journaled).
    Journal journal(jcfg);
    JobServer server(server_cfg(1, 2, &journal));
    server.add_tenant("a", TenantQuota{});
    server.start();
    auto res = server.submit("a", spec);
    ASSERT_TRUE(res.ok()) << res.decision.message;
    ASSERT_TRUE(server.wait_for_stages(res.job_id, 12));
    server.stop();
  }
  ASSERT_TRUE(ckpt::has_snapshot(ckpt::FileCheckpointStore(ckpt_dir.string()),
                                 "stencil"));

  // Incarnation 2: replay, resume from the latest snapshot — NOT from
  // iteration 0 — and still produce the oracle digest.
  Journal journal(jcfg);
  JobServer server(server_cfg(1, 2, &journal));
  server.add_tenant("a", TenantQuota{});
  const auto stats = server.recover();
  ASSERT_EQ(stats.jobs_recovered, 1);
  EXPECT_EQ(stats.jobs_resumed, 1);
  EXPECT_TRUE(server.status(1).spec.resume);
  server.run_until_idle();
  const JobStatus done = server.status(1);
  EXPECT_EQ(done.state, JobState::kDone) << done.error;
  EXPECT_EQ(done.digest, oracle.digest);
  EXPECT_EQ(done.lines, oracle.lines);
  EXPECT_TRUE(done.recovered);
  // The iteration counter proves the resume: far fewer stages than a
  // from-scratch run (we passed >= 12 gates before the crash).
  EXPECT_LT(done.stages, full_stages - 8)
      << "recovered run re-ran from iteration 0 instead of resuming";
  EXPECT_NE(server.metrics_json().find("\"svc.jobs_resumed_from_ckpt\":1"),
            std::string::npos);
}

// The in-process crash matrix: a completed run's journal, truncated to
// every record-count prefix, must always recover to the oracle digest.
TEST(JobServer, CrashMatrixEveryJournalPrefixRecoversToTheOracle) {
  const fs::path dir = fresh_dir("svc_crash_matrix");
  const fs::path ckpt_dir = dir / "ckpt";
  Journal::Config jcfg;
  jcfg.path = (dir / "journal.wal").string();
  JobSpec spec = small_cmeans(6);
  spec.checkpoint_every = 2;
  spec.checkpoint_dir = ckpt_dir.string();
  const LaunchOutcome oracle = run_single_shot(small_cmeans(6));

  {
    Journal journal(jcfg);
    JobServer::Config cfg = server_cfg(1, 2, &journal);
    cfg.journal_gate_every = 2;
    JobServer server(cfg);
    server.add_tenant("a", TenantQuota{});
    ASSERT_TRUE(server.submit("a", spec).ok());
    server.run_until_idle();
    ASSERT_EQ(server.status(1).digest, oracle.digest);
  }
  const JournalReplay full = read_journal(jcfg.path);
  ASSERT_FALSE(full.torn_tail);
  // SUBMIT, START, a few GATEs, DONE.
  ASSERT_GE(full.records.size(), 4u);
  EXPECT_EQ(full.records.front().type, JournalRecordType::kSubmit);
  EXPECT_EQ(full.records.back().type, JournalRecordType::kDone);

  for (std::size_t k = 1; k <= full.records.size(); ++k) {
    SCOPED_TRACE("crash after record " + std::to_string(k) + " (" +
                 journal_record_name(full.records[k - 1].type) + ")");
    const fs::path cell = dir / ("cell_" + std::to_string(k));
    fs::create_directories(cell);
    Journal::Config cell_cfg;
    cell_cfg.path = (cell / "journal.wal").string();
    write_journal_file(cell_cfg.path,
                       {full.records.begin(),
                        full.records.begin() + static_cast<long>(k)});
    Journal journal(cell_cfg);
    JobServer server(server_cfg(1, 2, &journal));
    server.add_tenant("a", TenantQuota{});
    const auto stats = server.recover();
    if (k == full.records.size()) {
      // The DONE record made it to disk: restored as history, not re-run.
      EXPECT_EQ(stats.jobs_restored, 1);
      EXPECT_EQ(stats.jobs_recovered, 0);
    } else {
      EXPECT_EQ(stats.jobs_recovered, 1);
    }
    server.run_until_idle();
    const JobStatus done = server.status(1);
    EXPECT_EQ(done.state, JobState::kDone) << done.error;
    EXPECT_EQ(done.digest, oracle.digest);
    EXPECT_EQ(done.lines, oracle.lines);
  }

  // A torn tail (garbage after a valid prefix) recovers identically.
  const fs::path torn = dir / "cell_torn";
  fs::create_directories(torn);
  Journal::Config torn_cfg;
  torn_cfg.path = (torn / "journal.wal").string();
  write_journal_file(torn_cfg.path,
                     {full.records.begin(), full.records.begin() + 2});
  {
    std::ofstream out(torn_cfg.path, std::ios::binary | std::ios::app);
    out << "PRSJ\x01garbage-half-record";
  }
  Journal journal(torn_cfg);
  JobServer server(server_cfg(1, 2, &journal));
  server.add_tenant("a", TenantQuota{});
  const auto stats = server.recover();
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(stats.jobs_recovered, 1);
  server.run_until_idle();
  EXPECT_EQ(server.status(1).digest, oracle.digest);
}

TEST(JobServer, RecoverRestoresTerminalHistoryWithoutAccounting) {
  const fs::path dir = fresh_dir("svc_recover_history");
  Journal::Config jcfg;
  jcfg.path = (dir / "journal.wal").string();
  std::vector<JournalRecord> records;
  records.push_back(submit_record(1, "a", small_cmeans(3)));
  JournalRecord done;
  done.type = JournalRecordType::kDone;
  done.job_id = 1;
  done.digest = "deadbeef";
  done.lines = {"line one"};
  records.push_back(done);
  records.push_back(submit_record(2, "a", small_cmeans(3)));
  JournalRecord fail;
  fail.type = JournalRecordType::kFail;
  fail.job_id = 2;
  fail.error = "device out of memory";
  records.push_back(fail);
  write_journal_file(jcfg.path, records);

  Journal journal(jcfg);
  JobServer server(server_cfg(1, 2, &journal));
  server.add_tenant("a", TenantQuota{});
  const auto stats = server.recover();
  EXPECT_EQ(stats.jobs_restored, 2);
  EXPECT_EQ(stats.jobs_recovered, 0);
  const JobStatus h1 = server.status(1);
  EXPECT_EQ(h1.state, JobState::kDone);
  EXPECT_EQ(h1.digest, "deadbeef");
  EXPECT_EQ(h1.lines, (std::vector<std::string>{"line one"}));
  const JobStatus h2 = server.status(2);
  EXPECT_EQ(h2.state, JobState::kFailed);
  EXPECT_EQ(h2.error, "device out of memory");
  // History restoration charges nothing: this incarnation never ran them.
  EXPECT_EQ(server.tenant_account("a").queued, 0);
  EXPECT_EQ(server.tenant_account("a").jobs_submitted, 0u);
  EXPECT_EQ(server.tenant_account("a").vgpus_in_use, 0);
  server.run_until_idle();  // nothing to do; must not wedge
}

TEST(JobServer, CancelDuringRecoveryResolvesCleanly) {
  const fs::path dir = fresh_dir("svc_recover_cancel");
  Journal::Config jcfg;
  jcfg.path = (dir / "journal.wal").string();
  write_journal_file(jcfg.path, {submit_record(1, "a", small_cmeans(500)),
                                 submit_record(2, "a", small_cmeans(3))});
  Journal journal(jcfg);
  JobServer server(server_cfg(1, 2, &journal));
  server.add_tenant("a", TenantQuota{});
  ASSERT_EQ(server.recover().jobs_recovered, 2);
  // Cancel a re-admitted job after replay, before the pump ever runs it.
  EXPECT_TRUE(server.cancel(1));
  EXPECT_EQ(server.status(1).state, JobState::kCancelled);
  server.run_until_idle();
  EXPECT_EQ(server.status(1).stages, 0) << "cancelled job must never run";
  EXPECT_EQ(server.status(2).state, JobState::kDone);
  EXPECT_EQ(server.pool().active_leases(), 0);
  EXPECT_EQ(server.tenant_account("a").jobs_cancelled, 1u);
  // The cancel was journaled: a third incarnation sees it as history.
  journal.flush();
  const JournalReplay replay = read_journal(jcfg.path);
  int cancels = 0;
  for (const JournalRecord& rec : replay.records) {
    cancels += rec.type == JournalRecordType::kCancel ? 1 : 0;
  }
  EXPECT_EQ(cancels, 1);
}

TEST(JobServer, RecoverFailsImpossibleJobsDeterministically) {
  const fs::path dir = fresh_dir("svc_recover_impossible");
  Journal::Config jcfg;
  jcfg.path = (dir / "journal.wal").string();
  JobSpec wide = small_cmeans(3);
  wide.nodes = 8;  // 8 vGPUs — more than the restarted pool has
  write_journal_file(jcfg.path, {submit_record(1, "ghost", small_cmeans(3)),
                                 submit_record(2, "a", wide),
                                 submit_record(3, "a", small_cmeans(3))});
  Journal journal(jcfg);
  JobServer server(server_cfg(1, 2, &journal));  // capacity 2
  server.add_tenant("a", TenantQuota{});
  const auto stats = server.recover();
  EXPECT_EQ(stats.jobs_failed, 2);
  EXPECT_EQ(stats.jobs_recovered, 1);
  EXPECT_EQ(server.status(1).state, JobState::kFailed);
  EXPECT_NE(server.status(1).error.find("not registered"), std::string::npos);
  EXPECT_EQ(server.status(2).state, JobState::kFailed);
  EXPECT_NE(server.status(2).error.find("pool too small"), std::string::npos);
  server.run_until_idle();
  EXPECT_EQ(server.status(3).state, JobState::kDone);
}

// --------------------------------------------------------- resilient client

TEST(ResilientClient, FailsFastWithConnectFailedWhenServerIsAbsent) {
  RetryPolicy policy;  // retries = 0: fail fast
  ResilientClient client("/tmp/prs_no_such_server.sock", policy);
  EXPECT_THROW(client.request("PING"), ConnectFailed);
}

TEST(ResilientClient, HonorsRetryAfterAndSucceeds) {
  const std::string path =
      "/tmp/prs_retry_after_" + std::to_string(::getpid()) + ".sock";
  std::atomic<int> calls{0};
  SocketServer sock(path, [&calls](const std::string& line, bool*) {
    if (line == "PING" && calls.fetch_add(1) == 0) {
      return format_retry_after(10, "queue_full", "try later");
    }
    return std::string("OK pong\n");
  });
  RetryPolicy policy;
  policy.retries = 3;
  policy.base_ms = 5;
  ResilientClient client(path, policy);
  std::vector<std::string> reasons;
  client.set_retry_observer([&reasons](int, int, const std::string& why) {
    reasons.push_back(why);
  });
  EXPECT_EQ(client.request("PING"), "OK pong\n");
  EXPECT_EQ(calls.load(), 2);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_NE(reasons[0].find("RETRY-AFTER"), std::string::npos);
  sock.stop();
}

TEST(ResilientClient, ReconnectsAcrossAServerRestart) {
  const std::string path =
      "/tmp/prs_restart_" + std::to_string(::getpid()) + ".sock";
  auto first = std::make_unique<SocketServer>(
      path, [](const std::string&, bool*) {
        return std::string("OK generation=1\n");
      });
  RetryPolicy policy;
  policy.retries = 40;
  policy.base_ms = 10;
  policy.cap_ms = 50;
  ResilientClient client(path, policy);
  EXPECT_EQ(client.request("PING"), "OK generation=1\n");

  // Take the server down; bring a second generation up shortly after. The
  // client's PING must ride the outage on its backoff budget.
  first->stop();
  first.reset();
  std::unique_ptr<SocketServer> second;
  std::thread reviver([&path, &second] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    second = std::make_unique<SocketServer>(
        path, [](const std::string&, bool*) {
          return std::string("OK generation=2\n");
        });
  });
  const std::string resp = client.request("PING");
  reviver.join();
  EXPECT_EQ(resp, "OK generation=2\n");
  EXPECT_GE(client.reconnects(), 1);
  second->stop();
}

TEST(ResilientClient, WaitJobSurvivesRequestTimeouts) {
  const std::string path =
      "/tmp/prs_waitjob_" + std::to_string(::getpid()) + ".sock";
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  server.start();
  SocketServer sock(path, [&server](const std::string& line, bool* sd) {
    return handle_request(server, line, sd);
  });
  auto res = server.submit("a", small_cmeans(200));
  ASSERT_TRUE(res.ok());
  RetryPolicy policy;
  policy.retries = 2;
  policy.base_ms = 5;
  policy.timeout_ms = 20;  // far shorter than the job; WAIT must re-issue
  ResilientClient client(path, policy);
  const std::string done = client.wait_job(res.job_id);
  EXPECT_NE(done.find("state=DONE"), std::string::npos) << done;
  sock.stop();
  server.stop();
}

}  // namespace
}  // namespace prs::svc
