// Per-lane shuffle kv-store (src/numa/kv_store): property tests against a
// std::map oracle, grow/rehash edge cases, and the determinism argument —
// a fixed lane-order merge of any distribution of the input equals the
// single-lane result bit-for-bit. Plus the two wordcount tokenizers
// (istringstream reference vs the allocation-free fast path) agreeing on
// whitespace-rich corpora, which is what keeps the NUMA shuffle path
// byte-identical to the reduce path.
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/wordcount.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "numa/kv_store.hpp"
#include "numa/topology.hpp"

namespace {

using namespace prs;

struct NumaGuard {
  ~NumaGuard() {
    numa::clear_enabled_override();
    numa::clear_topology_override();
    exec::ThreadPool::instance().configure(0);
  }
};

/// Serializes a merged map to bytes; memcmp equality below is the
/// "bit-for-bit" claim, not just logical map equality.
std::vector<unsigned char> serialize(const std::map<std::string, long>& m) {
  std::vector<unsigned char> out;
  for (const auto& [k, v] : m) {
    out.insert(out.end(), k.begin(), k.end());
    out.push_back('\0');
    const auto* vb = reinterpret_cast<const unsigned char*>(&v);
    out.insert(out.end(), vb, vb + sizeof(v));
  }
  return out;
}

std::map<std::string, long> store_as_map(const numa::LaneKvStore& s) {
  std::map<std::string, long> out;
  s.for_each([&](const std::string& k, long v) { out[k] += v; });
  return out;
}

TEST(LaneKvStore, BasicAddAndAccumulate) {
  numa::LaneKvStore s;
  s.add("alpha", 1);
  s.add("beta", 2);
  s.add("alpha", 3);
  EXPECT_EQ(s.size(), 2u);
  const auto m = store_as_map(s);
  EXPECT_EQ(m.at("alpha"), 4);
  EXPECT_EQ(m.at("beta"), 2);
}

TEST(LaneKvStore, HandlesEmptyAndBinaryKeys) {
  numa::LaneKvStore s(8);
  s.add("", 7);
  s.add(std::string_view("\0\x01", 2), 1);
  s.add(std::string_view("\0\x02", 2), 1);
  s.add("", 3);
  const auto m = store_as_map(s);
  EXPECT_EQ(m.at(""), 10);
  EXPECT_EQ(m.size(), 3u);
}

TEST(LaneKvStore, GrowsFromMinimumCapacityAndKeepsEverything) {
  numa::LaneKvStore s(1);  // rounds up to the 8-slot minimum
  EXPECT_EQ(s.capacity(), 8u);
  std::map<std::string, long> oracle;
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(i % 1250);
    s.add(key, i);
    oracle[key] += i;
  }
  EXPECT_GT(s.grow_count(), 5u);  // 8 -> beyond 1250*10/7 slots
  EXPECT_EQ(s.size(), 1250u);
  // Power-of-two capacity below the 70% load ceiling.
  EXPECT_EQ(s.capacity() & (s.capacity() - 1), 0u);
  EXPECT_GT(s.capacity() * 7, s.size() * 10);
  EXPECT_EQ(store_as_map(s), oracle);
}

TEST(LaneKvStore, RandomCorporaMatchMapOracle) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    numa::LaneKvStore s(8);
    std::map<std::string, long> oracle;
    const int n = 200 + static_cast<int>(rng.uniform() * 3000);
    for (int i = 0; i < n; ++i) {
      // Short keys from a small alphabet: dense collisions + rehash churn.
      const int len = static_cast<int>(rng.uniform() * 6);
      std::string key;
      for (int c = 0; c < len; ++c) {
        key += static_cast<char>('a' + static_cast<int>(rng.uniform() * 4));
      }
      const long delta = static_cast<long>(rng.uniform() * 100) - 50;
      s.add(key, delta);
      oracle[key] += delta;
    }
    ASSERT_EQ(store_as_map(s), oracle) << "round " << round;
  }
}

TEST(LaneKvStore, FixedOrderMergeEqualsSingleLaneBitForBit) {
  Rng rng(99);
  // One corpus of (word, count) increments...
  std::vector<std::pair<std::string, long>> events;
  for (int i = 0; i < 8000; ++i) {
    events.emplace_back(
        "w" + std::to_string(static_cast<int>(rng.uniform() * 900)), 1);
  }
  // ...counted in a single lane (the reference)...
  std::vector<numa::LaneKvStore> single(1);
  for (const auto& [w, c] : events) single[0].add(w, c);
  const auto ref = serialize(numa::merge_lane_stores(single));

  // ...must merge bit-for-bit from ANY distribution over any lane count.
  for (int lanes : {2, 3, 7, 16}) {
    std::vector<numa::LaneKvStore> stores(static_cast<std::size_t>(lanes));
    std::size_t i = 0;
    for (const auto& [w, c] : events) {
      // Adversarial distribution: round-robin + random jumps.
      const auto lane =
          (i++ + static_cast<std::size_t>(rng.uniform() * lanes)) %
          static_cast<std::size_t>(lanes);
      stores[lane].add(w, c);
    }
    const auto got = serialize(numa::merge_lane_stores(stores));
    ASSERT_EQ(got.size(), ref.size()) << "lanes=" << lanes;
    ASSERT_EQ(std::memcmp(got.data(), ref.data(), ref.size()), 0)
        << "lanes=" << lanes;
  }
}

// -- tokenizer equivalence through the app -----------------------------------

/// Corpus with every C-locale whitespace separator, empty lines, leading/
/// trailing runs — the shapes where a hand-rolled tokenizer diverges from
/// `istream >> word` if it gets the space set wrong.
apps::Corpus nasty_corpus() {
  return apps::Corpus{
      "plain words here",
      "  leading and   multiple   spaces  ",
      "tabs\tbetween\twords\t",
      "mixed \t\v\f\r separators\r\n",
      "",
      "\t\v\f\r ",
      "one",
      "repeated repeated repeated",
      "x",
  };
}

TEST(WordcountShuffle, PerLaneAndReducePathsAgreeOnNastyWhitespace) {
  NumaGuard guard;
  exec::ThreadPool::instance().configure(4);
  numa::set_topology(numa::Topology::uniform(2, 2));
  auto corpus = std::make_shared<const apps::Corpus>(nasty_corpus());
  const auto serial = apps::wordcount_serial(*corpus);

  auto run_map = [&] {
    auto spec = apps::wordcount_spec(corpus);
    core::Emitter<std::string, long> em;
    spec.cpu_map(core::InputSlice{0, corpus->size()}, em);
    std::map<std::string, long> out;
    for (const auto& [w, c] : em.pairs()) out[w] += c;
    return out;
  };

  numa::set_enabled(false);
  EXPECT_EQ(run_map(), serial);  // reduce path (istringstream tokenizer)
  numa::set_enabled(true);
  EXPECT_EQ(run_map(), serial);  // per-lane path (fast tokenizer)
}

TEST(WordcountShuffle, RandomCorporaAgreeAcrossPathsAndThreadCounts) {
  NumaGuard guard;
  auto& pool = exec::ThreadPool::instance();
  Rng rng(5);
  auto corpus = std::make_shared<const apps::Corpus>(
      apps::generate_corpus(rng, 500, 10, 300));
  const auto serial = apps::wordcount_serial(*corpus);
  const auto ref = serialize(serial);

  for (int threads : {1, 3, 6}) {
    pool.configure(threads);
    for (const bool on : {false, true}) {
      numa::set_enabled(on);
      auto spec = apps::wordcount_spec(corpus);
      core::Emitter<std::string, long> em;
      spec.cpu_map(core::InputSlice{0, corpus->size()}, em);
      std::map<std::string, long> out;
      for (const auto& [w, c] : em.pairs()) out[w] += c;
      const auto got = serialize(out);
      ASSERT_EQ(got, ref) << "threads=" << threads << " numa=" << on;
    }
  }
}

}  // namespace
