// SIMD kernel layer tests (DESIGN.md §4j).
//
// The load-bearing property is the determinism contract: every kernel in
// the deterministic tier must produce BIT-IDENTICAL results at scalar,
// AVX2 and AVX-512 — these tests compare raw bytes, not tolerances. The
// fma tier (reachable only behind fma_allowed()) is held to ULP-style
// relative bounds instead. On hosts without AVX-512 (or AVX2) the
// corresponding sweeps skip; CI runs the scalar and AVX2 legs explicitly
// via PRS_SIMD.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "roofline/analytic_scheduler.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "simd/scalar_ref.hpp"
#include "svc/job_spec.hpp"
#include "svc/launcher.hpp"

namespace prs {
namespace {

/// Deterministic fill that exercises varied magnitudes without RNG state.
double synth(std::size_t i, double lo = -4.0) {
  const double t = static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  return lo + 9.0 * t + 1e-3 * static_cast<double>(i % 7);
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> out{simd::Level::kScalar};
  if (simd::level_supported(simd::Level::kAvx2)) {
    out.push_back(simd::Level::kAvx2);
  }
  if (simd::level_supported(simd::Level::kAvx512)) {
    out.push_back(simd::Level::kAvx512);
  }
  return out;
}

/// Restores dispatch state around every test so the suite order and the
/// ambient PRS_SIMD/PRS_SIMD_FMA of a CI leg never leak between cases.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override {
    simd::clear_level_override();
    simd::clear_fma_override();
  }
};

// -- dispatch ----------------------------------------------------------------

TEST_F(SimdTest, ParseLevelNamesAndAuto) {
  EXPECT_EQ(simd::parse_level("scalar"), simd::Level::kScalar);
  EXPECT_EQ(simd::parse_level("avx2"), simd::Level::kAvx2);
  EXPECT_EQ(simd::parse_level("avx512"), simd::Level::kAvx512);
  EXPECT_EQ(simd::parse_level("auto"), simd::detected_level());
  EXPECT_THROW(simd::parse_level("sse2"), InvalidArgument);
  EXPECT_THROW(simd::parse_level(""), InvalidArgument);
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx512), "avx512");
}

TEST_F(SimdTest, ScalarAlwaysSupportedAndOrdered) {
  EXPECT_TRUE(simd::level_supported(simd::Level::kScalar));
  // A CPU supporting level L supports every lower level.
  if (simd::level_supported(simd::Level::kAvx512)) {
    EXPECT_TRUE(simd::level_supported(simd::Level::kAvx2));
  }
}

TEST_F(SimdTest, OverrideWinsAndClears) {
  simd::set_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(&simd::active_kernels(),
            &simd::kernels_for(simd::Level::kScalar));
  simd::clear_level_override();
  // "auto" via the string overload also clears.
  simd::set_level("scalar");
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  simd::set_level("auto");
  EXPECT_EQ(simd::active_level(), simd::active_level());  // no throw
}

TEST_F(SimdTest, UnsupportedLevelThrows) {
  if (!simd::level_supported(simd::Level::kAvx512)) {
    EXPECT_THROW(simd::set_level(simd::Level::kAvx512), InvalidArgument);
    EXPECT_THROW(simd::set_level("avx512"), InvalidArgument);
  } else {
    GTEST_SKIP() << "host supports every compiled level";
  }
}

TEST_F(SimdTest, FmaFlagDefaultsOffAndOverrides) {
  simd::set_fma_allowed(false);
  EXPECT_FALSE(simd::fma_allowed());
  simd::set_fma_allowed(true);
  EXPECT_TRUE(simd::fma_allowed());
}

TEST_F(SimdTest, MeasureHostSpeedupIsOneAtScalarAndClamped) {
  simd::set_level(simd::Level::kScalar);
  EXPECT_DOUBLE_EQ(simd::measure_host_speedup(), 1.0);
  simd::clear_level_override();
  const double s = simd::measure_host_speedup();
  EXPECT_GE(s, 1.0);
  EXPECT_LE(s, 16.0);
}

// -- deterministic tier: bitwise equivalence sweep ---------------------------

const std::size_t kDims[] = {1, 2,  3,  4,  5,  6,  7,  8,  9,
                             10, 11, 12, 13, 14, 15, 16, 17, 31,
                             64, 100, 127};
const std::size_t kCenters[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 17};

TEST_F(SimdTest, DistanceAndQuadBlocksBitIdenticalAcrossLevels) {
  for (const simd::Level level : supported_levels()) {
    const simd::Kernels& kn = simd::kernels_for(level);
    for (const std::size_t m : kCenters) {
      for (const std::size_t d : kDims) {
        std::vector<double> x(d), ct(m * d), var_t(m * d);
        for (std::size_t i = 0; i < d; ++i) x[i] = synth(i);
        for (std::size_t i = 0; i < m * d; ++i) {
          ct[i] = synth(i + 13);
          var_t[i] = 0.25 + std::fabs(synth(i + 101));  // positive variances
        }
        std::vector<double> got(m), want(m);
        kn.dist2_block(x.data(), ct.data(), m, d, got.data());
        simd::ref::dist2_block(x.data(), ct.data(), m, d, want.data());
        for (std::size_t j = 0; j < m; ++j) {
          ASSERT_TRUE(bits_equal(got[j], want[j]))
              << "dist2 level=" << simd::level_name(level) << " m=" << m
              << " d=" << d << " j=" << j;
        }
        kn.quad_block(x.data(), ct.data(), var_t.data(), m, d, got.data());
        simd::ref::quad_block(x.data(), ct.data(), var_t.data(), m, d,
                              want.data());
        for (std::size_t j = 0; j < m; ++j) {
          ASSERT_TRUE(bits_equal(got[j], want[j]))
              << "quad level=" << simd::level_name(level) << " m=" << m
              << " d=" << d << " j=" << j;
        }
      }
    }
  }
}

TEST_F(SimdTest, ElementwiseKernelsBitIdenticalAcrossLevels) {
  for (const simd::Level level : supported_levels()) {
    const simd::Kernels& kn = simd::kernels_for(level);
    for (const std::size_t n : kDims) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = synth(i + 7);
      const double w = 1.75;

      std::vector<double> got(n), want(n);
      for (std::size_t i = 0; i < n; ++i) got[i] = want[i] = synth(i + 31);
      kn.axpy_acc(got.data(), x.data(), w, n);
      simd::ref::axpy_acc(want.data(), x.data(), w, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(bits_equal(got[i], want[i])) << "axpy_acc n=" << n;
      }

      kn.add_acc(got.data(), x.data(), n);
      simd::ref::add_acc(want.data(), x.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(bits_equal(got[i], want[i])) << "add_acc n=" << n;
      }

      std::vector<double> g2(n), w2(n);
      for (std::size_t i = 0; i < n; ++i) g2[i] = w2[i] = synth(i + 53);
      kn.moments_acc(got.data(), g2.data(), x.data(), 0.37, n);
      simd::ref::moments_acc(want.data(), w2.data(), x.data(), 0.37, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(bits_equal(got[i], want[i])) << "moments p1 n=" << n;
        ASSERT_TRUE(bits_equal(g2[i], w2[i])) << "moments p2 n=" << n;
      }

      kn.scale(got.data(), 0.9375, n);
      simd::ref::scale(want.data(), 0.9375, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(bits_equal(got[i], want[i])) << "scale n=" << n;
      }
    }
  }
}

TEST_F(SimdTest, RowDotsBitIdenticalAcrossLevels) {
  for (const simd::Level level : supported_levels()) {
    const simd::Kernels& kn = simd::kernels_for(level);
    for (const std::size_t rows : kCenters) {
      for (const std::size_t d : kDims) {
        std::vector<double> a(rows * d), x(d);
        for (std::size_t i = 0; i < a.size(); ++i) a[i] = synth(i + 3);
        for (std::size_t i = 0; i < d; ++i) x[i] = synth(i + 11);
        std::vector<double> got(rows), want(rows);
        kn.row_dots(a.data(), d, rows, d, x.data(), got.data());
        simd::ref::row_dots(a.data(), d, rows, d, x.data(), want.data());
        for (std::size_t r = 0; r < rows; ++r) {
          ASSERT_TRUE(bits_equal(got[r], want[r]))
              << "row_dots level=" << simd::level_name(level)
              << " rows=" << rows << " d=" << d << " r=" << r;
        }
      }
    }
  }
}

TEST_F(SimdTest, StencilRowBitIdenticalAcrossLevels) {
  for (const simd::Level level : supported_levels()) {
    const simd::Kernels& kn = simd::kernels_for(level);
    for (const std::size_t cols : {2ul, 3ul, 4ul, 9ul, 16ul, 17ul, 33ul,
                                   64ul, 101ul}) {
      std::vector<double> mid(cols), up(cols), down(cols);
      for (std::size_t i = 0; i < cols; ++i) {
        mid[i] = synth(i);
        up[i] = synth(i + 211);
        down[i] = synth(i + 409);
      }
      std::vector<double> got(cols, 0.0), want(cols, 0.0);
      const double gm =
          kn.stencil_row(got.data(), mid.data(), up.data(), down.data(), cols);
      const double wm = simd::ref::stencil_row(want.data(), mid.data(),
                                               up.data(), down.data(), cols);
      ASSERT_TRUE(bits_equal(gm, wm)) << "stencil max cols=" << cols;
      for (std::size_t c = 1; c + 1 < cols; ++c) {
        ASSERT_TRUE(bits_equal(got[c], want[c]))
            << "stencil level=" << simd::level_name(level)
            << " cols=" << cols << " c=" << c;
      }
    }
  }
}

TEST_F(SimdTest, PackTransposedRoundTrips) {
  const std::size_t m = 5, d = 7;
  std::vector<double> a(m * d);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = synth(i);
  std::vector<double> t;
  simd::pack_transposed(a.data(), m, d, t);
  ASSERT_EQ(t.size(), m * d);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_TRUE(bits_equal(t[c * m + j], a[j * d + c]));
    }
  }
}

// -- fma tier: ULP-bounded against the reference -----------------------------

TEST_F(SimdTest, FmaDotWithinRelativeBound) {
  for (const simd::Level level : supported_levels()) {
    const simd::Kernels& kn = simd::kernels_for(level);
    for (const std::size_t n : {1ul, 3ul, 8ul, 17ul, 100ul, 1000ul, 1023ul}) {
      std::vector<double> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = synth(i);
        b[i] = synth(i + 500);
      }
      const double want = simd::ref::dot(a.data(), b.data(), n);
      const double got = kn.dot_fast(a.data(), b.data(), n);
      // Reassociation error of a length-n sum is O(n * eps * sum |terms|).
      double mag = 0.0;
      for (std::size_t i = 0; i < n; ++i) mag += std::fabs(a[i] * b[i]);
      const double tol =
          static_cast<double>(n) * std::numeric_limits<double>::epsilon() *
              mag +
          1e-300;
      EXPECT_NEAR(got, want, tol)
          << "dot_fast level=" << simd::level_name(level) << " n=" << n;
    }
  }
}

TEST_F(SimdTest, FmaNrm2MatchesContractAndBound) {
  for (const simd::Level level : supported_levels()) {
    const simd::Kernels& kn = simd::kernels_for(level);
    for (const std::size_t n : {1ul, 7ul, 64ul, 1000ul}) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = synth(i + 3) * 1e150;
      const double want = simd::ref::nrm2(x.data(), n);
      const double got = kn.nrm2_fast(x.data(), n);
      EXPECT_NEAR(got, want,
                  1e-12 * want + std::numeric_limits<double>::min())
          << "nrm2_fast level=" << simd::level_name(level) << " n=" << n;
    }
    // Special values: NaN dominates, else Inf, signed zeros are skipped.
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> with_inf{1.0, -inf, 2.0};
    std::vector<double> with_nan{1.0, nan, inf};
    std::vector<double> zeros{0.0, -0.0, 0.0};
    EXPECT_EQ(kn.nrm2_fast(with_inf.data(), with_inf.size()), inf);
    EXPECT_TRUE(std::isnan(kn.nrm2_fast(with_nan.data(), with_nan.size())));
    EXPECT_EQ(kn.nrm2_fast(zeros.data(), zeros.size()), 0.0);
  }
}

TEST_F(SimdTest, FmaAxpyWithinRelativeBound) {
  for (const simd::Level level : supported_levels()) {
    const simd::Kernels& kn = simd::kernels_for(level);
    const std::size_t n = 257;
    std::vector<double> got(n), want(n), x(n);
    for (std::size_t i = 0; i < n; ++i) {
      got[i] = want[i] = synth(i);
      x[i] = synth(i + 77);
    }
    kn.axpy_acc_fast(got.data(), x.data(), 1.5, n);
    simd::ref::axpy_acc(want.data(), x.data(), 1.5, n);
    for (std::size_t i = 0; i < n; ++i) {
      // One fused vs one rounded multiply-add: the difference is the
      // rounding of the product, so bound it by the term magnitudes (the
      // sum may cancel to far below |1.5 * x[i]|).
      EXPECT_NEAR(got[i], want[i],
                  2.0 * std::numeric_limits<double>::epsilon() *
                      (std::fabs(want[i]) + std::fabs(1.5 * x[i])));
    }
  }
}

// -- linalg::nrm2 special-value contract (the satellite bugfix) --------------

TEST_F(SimdTest, Nrm2InfinityYieldsInfNotNaN) {
  simd::set_fma_allowed(false);
  const double inf = std::numeric_limits<double>::infinity();
  // Two infinities used to hit inf/inf = NaN in the scaled update.
  std::vector<double> two_inf{inf, inf};
  EXPECT_EQ(linalg::nrm2<double>(two_inf), inf);
  std::vector<double> mixed{3.0, -inf, 2.0, inf};
  EXPECT_EQ(linalg::nrm2<double>(mixed), inf);
  std::vector<double> with_nan{inf, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_TRUE(std::isnan(linalg::nrm2<double>(with_nan)));
  std::vector<double> zeros{0.0, -0.0};
  EXPECT_EQ(linalg::nrm2<double>(zeros), 0.0);
  // Scaling still prevents overflow/underflow for extreme finite inputs.
  std::vector<double> huge{1e200, 1e200, 1e200};
  EXPECT_NEAR(linalg::nrm2<double>(huge), std::sqrt(3.0) * 1e200,
              1e186);
  std::vector<double> tiny{1e-200, 1e-200};
  EXPECT_NEAR(linalg::nrm2<double>(tiny), std::sqrt(2.0) * 1e-200, 1e-214);
  // Equal-to-scale elements take the exact +1 branch.
  std::vector<double> equal{5.0, -5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(linalg::nrm2<double>(equal), 10.0);
}

// -- gemm_blocked tail blocks (the satellite audit) --------------------------

TEST_F(SimdTest, GemmBlockedMatchesPlainGemmAtTailSizes) {
  exec::ThreadPool::instance().configure(3);
  simd::set_fma_allowed(false);
  for (const simd::Level level : supported_levels()) {
    simd::set_level(level);
    for (const std::size_t n : {1ul, 63ul, 64ul, 65ul, 97ul, 101ul}) {
      const std::size_t m = (n % 2 == 0) ? n + 1 : n;  // exercise odd rows
      const std::size_t k = (n >= 64) ? n - 1 : n + 2;
      linalg::MatrixD a(m, k), b(k, n), c1(m, n, 0.5), c2(m, n, 0.5);
      for (std::size_t i = 0; i < m * k; ++i) a.storage()[i] = synth(i);
      for (std::size_t i = 0; i < k * n; ++i) b.storage()[i] = synth(i + 9);
      linalg::gemm(1.25, a, b, 0.75, c1);
      linalg::gemm_blocked(1.25, a, b, 0.75, c2, 64);
      for (std::size_t i = 0; i < m * n; ++i) {
        ASSERT_TRUE(bits_equal(c1.storage()[i], c2.storage()[i]))
            << "gemm_blocked level=" << simd::level_name(level)
            << " n=" << n << " elem=" << i;
      }
      // Block sizes bracketing the dims hit every tail-shape combination.
      for (const std::size_t block : {1ul, 63ul, 65ul, 128ul}) {
        linalg::MatrixD c3(m, n, 0.5);
        linalg::gemm_blocked(1.25, a, b, 0.75, c3, block);
        for (std::size_t i = 0; i < m * n; ++i) {
          ASSERT_TRUE(bits_equal(c1.storage()[i], c3.storage()[i]))
              << "gemm_blocked block=" << block << " n=" << n;
        }
      }
    }
  }
}

TEST_F(SimdTest, GemmBlockedFmaWithinRelativeBound) {
  simd::set_fma_allowed(true);
  const std::size_t m = 33, k = 65, n = 31;
  linalg::MatrixD a(m, k), b(k, n), want(m, n, 0.0), got(m, n, 0.0);
  for (std::size_t i = 0; i < m * k; ++i) a.storage()[i] = synth(i);
  for (std::size_t i = 0; i < k * n; ++i) b.storage()[i] = synth(i + 9);
  {
    simd::set_fma_allowed(false);
    linalg::gemm(1.0, a, b, 0.0, want);
    simd::set_fma_allowed(true);
  }
  linalg::gemm_blocked(1.0, a, b, 0.0, got, 16);
  // The bound must scale with the magnitude of the accumulated terms, not
  // the (possibly cancelled) result: mag(i,j) = sum_k |a(i,k)*b(k,j)|.
  linalg::MatrixD aa(m, k), ab(k, n), mag(m, n, 0.0);
  for (std::size_t i = 0; i < m * k; ++i)
    aa.storage()[i] = std::fabs(a.storage()[i]);
  for (std::size_t i = 0; i < k * n; ++i)
    ab.storage()[i] = std::fabs(b.storage()[i]);
  {
    simd::set_fma_allowed(false);
    linalg::gemm(1.0, aa, ab, 0.0, mag);
    simd::set_fma_allowed(true);
  }
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(got.storage()[i], want.storage()[i],
                static_cast<double>(k) *
                        std::numeric_limits<double>::epsilon() *
                        mag.storage()[i] +
                    1e-300);
  }
}

// -- roofline feedback (Eq (8) with a measured host speedup) -----------------

TEST_F(SimdTest, WithCpuScaleRederivesTheSplit) {
  roofline::WorkloadSplit split;
  split.cpu_rate = 10.0;
  split.gpu_rate = 90.0;
  split.cpu_fraction = 0.1;
  split.regime = roofline::SplitRegime::kBetweenRidges;
  const auto scaled = split.with_cpu_scale(3.0);
  EXPECT_DOUBLE_EQ(scaled.cpu_rate, 30.0);
  EXPECT_DOUBLE_EQ(scaled.gpu_rate, 90.0);
  EXPECT_DOUBLE_EQ(scaled.cpu_fraction, 0.25);
  EXPECT_EQ(scaled.regime, split.regime);
  EXPECT_THROW(split.with_cpu_scale(0.0), Error);
  EXPECT_THROW(split.with_cpu_scale(-1.0), Error);
  // scale 1 is the identity.
  EXPECT_DOUBLE_EQ(split.with_cpu_scale(1.0).cpu_fraction,
                   split.cpu_fraction);
}

TEST_F(SimdTest, HostSimdScaleRaisesTheCpuShare) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, core::NodeConfig{});
  core::StaticAnalyticPolicy policy;
  core::JobShape shape;
  shape.ai_cpu = shape.ai_gpu = 50.0;
  shape.gpu_data_cached = true;
  shape.ai_of_block = [](double) { return 50.0; };

  core::JobConfig base;
  const auto d0 = policy.node_decision(cluster, shape, base, 0);
  core::JobConfig boosted;
  boosted.host_simd_scale = 4.0;
  const auto d1 = policy.node_decision(cluster, shape, boosted, 0);
  EXPECT_GT(d1.cpu_fraction, d0.cpu_fraction);
  EXPECT_GT(d1.capability, d0.capability);
  // The exact Eq (8) value: p' = s*Fc / (s*Fc + Fg).
  const auto split = cluster.scheduler(0).workload_split(
      shape.ai_cpu, shape.ai_gpu, !shape.gpu_data_cached, 1);
  EXPECT_DOUBLE_EQ(d1.cpu_fraction,
                   split.with_cpu_scale(4.0).cpu_fraction);
}

// -- app-level digest pins ---------------------------------------------------

/// The engine_determinism_test shapes, byte-for-byte: these digests were
/// captured from the pre-SIMD runner, so they simultaneously pin
/// (a) PRS_SIMD=scalar == the old scalar arithmetic and (b) vector levels
/// == scalar (the cross-ISA determinism contract), for all eight apps.
struct AppGolden {
  const char* app;
  const char* digest;
};
constexpr AppGolden kGoldens[] = {
    {"cmeans", "de9498a2752edda5"},    {"kmeans", "d577cc8d98d6d9f2"},
    {"gmm", "703897dae037855e"},      {"gemv", "2e2da806987a60a8"},
    {"dgemm", "a6c2dd578bfdf0f3"},    {"fft", "afc039769dc48a31"},
    {"wordcount", "ff2126bc8e56f40a"}, {"stencil", "fd1284ed68020988"},
};

svc::JobSpec app_spec(const std::string& app) {
  svc::JobSpec spec;
  spec.app = app;
  spec.nodes = 3;
  spec.functional = true;
  spec.points = 400;
  spec.dims = 6;
  spec.clusters = 3;
  spec.iterations = 4;
  spec.rows = 96;
  spec.cols = 64;
  if (app == "dgemm") {
    spec.rows = 48;
    spec.cols = 40;
    spec.dims = 24;
  } else if (app == "stencil") {
    spec.dims = 40;  // grid rows
    spec.cols = 32;
    spec.iterations = 6;
  } else if (app == "fft") {
    spec.functional = false;  // modeled-only app
    spec.points = 64;
  } else if (app == "wordcount") {
    spec.points = 300;  // corpus lines
  }
  return spec;
}

std::string run_digest(const std::string& app) {
  exec::ThreadPool::instance().configure(3);
  svc::JobSpec spec = app_spec(app);
  spec.validate();
  sim::Simulator simu;
  const core::NodeConfig node = spec.node_config();
  core::Cluster cluster(simu, spec.nodes, node);
  core::JobConfig cfg = spec.job_config();
  auto policy = core::make_policy(spec.policy);
  cfg.policy = policy.get();
  Rng rng(spec.seed);
  const svc::LaunchOutcome out =
      svc::run_job_spec(spec, cluster, node, cfg, rng, nullptr);
  EXPECT_FALSE(out.digest.empty()) << app << " produced no digest";
  return out.digest;
}

TEST_F(SimdTest, AllAppsPinnedDigestsAtEveryLevel) {
  simd::set_fma_allowed(false);  // the contract covers the deterministic tier
  for (const simd::Level level : supported_levels()) {
    simd::set_level(level);
    for (const AppGolden& g : kGoldens) {
      EXPECT_EQ(run_digest(g.app), g.digest)
          << g.app << " diverged at level " << simd::level_name(level);
    }
  }
}

}  // namespace
}  // namespace prs
