// Property-based tests (randomized + parameterized sweeps) on the system's
// key invariants:
//   * the analytic split minimizes the modeled makespan (Eq (5)'s "when
//     Tg_p ~= Tc_p, Tgc gets the minimal value");
//   * the shuffle preserves the multiset of emitted key/value pairs for
//     arbitrary random inputs on arbitrary cluster sizes;
//   * partitioning covers the input exactly under any configuration;
//   * the DES clock is monotone and every scheduled event fires, under
//     randomized workloads of interleaved processes;
//   * modeled job time scales linearly in the input (no super/sublinear
//     artifacts of the runtime bookkeeping).
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "simtime/channel.hpp"
#include "simtime/process.hpp"
#include "simtime/resource.hpp"

namespace prs::core {
namespace {

// -- the analytic split is optimal -----------------------------------------------

struct SplitCase {
  double ai;
  bool cached;
};

class SplitOptimality : public ::testing::TestWithParam<SplitCase> {};

double modeled_elapsed(double ai, bool cached, double p_override) {
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  MapReduceSpec<int, long> spec;
  spec.name = "sweep";
  spec.cpu_map = [](const InputSlice&, Emitter<int, long>& e) {
    e.emit(0, 1);
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };
  spec.cpu_flops_per_item = 1000.0;
  spec.gpu_flops_per_item = 1000.0;
  spec.ai_cpu = ai;
  spec.ai_gpu = ai;
  spec.gpu_data_cached = cached;
  spec.item_bytes = 1000.0 / ai;
  JobConfig cfg;
  cfg.mode = ExecutionMode::kModeled;
  cfg.charge_job_startup = false;
  cfg.cpu_fraction_override = p_override;
  return run_job(cluster, spec, cfg, 2000000).stats.elapsed;
}

TEST_P(SplitOptimality, AnalyticFractionBeatsCoarseSweep) {
  const auto c = GetParam();
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  const double p_star =
      cluster.scheduler(0).workload_split(c.ai, !c.cached).cpu_fraction;
  const double t_star = modeled_elapsed(c.ai, c.cached, p_star);
  // No point of a coarse sweep may beat the analytic split by > 5%
  // (granularity rounding allows small wins).
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const double t = modeled_elapsed(c.ai, c.cached, p);
    EXPECT_GT(t, t_star * 0.95)
        << "p=" << p << " beat the analytic p*=" << p_star;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AiRange, SplitOptimality,
    ::testing::Values(SplitCase{0.5, false}, SplitCase{2.0, false},
                      SplitCase{8.0, false}, SplitCase{50.0, true},
                      SplitCase{500.0, true}, SplitCase{6600.0, true}));

// -- shuffle preserves the pair multiset -------------------------------------------

class ShuffleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShuffleProperty, RandomKeyValueLoadsSurviveExactly) {
  const int nodes = GetParam();
  for (std::uint64_t seed : {1ull, 17ull, 4242ull}) {
    Rng rng(seed);
    const std::size_t n = 500 + rng.uniform_index(3000);
    const int key_space = 1 + static_cast<int>(rng.uniform_index(64));

    // Ground truth: per-key sums of deterministic pseudo-random values.
    auto value_of = [](std::size_t i) {
      return static_cast<long>((i * 2654435761u) % 1000);
    };
    auto key_of = [key_space](std::size_t i) {
      return static_cast<int>((i * 40503u) % static_cast<unsigned>(key_space));
    };
    std::map<int, long> want;
    for (std::size_t i = 0; i < n; ++i) want[key_of(i)] += value_of(i);

    MapReduceSpec<int, long> spec;
    spec.name = "shuffle-prop";
    spec.cpu_map = [=](const InputSlice& s, Emitter<int, long>& e) {
      for (std::size_t i = s.begin; i < s.end; ++i) {
        e.emit(key_of(i), value_of(i));
      }
    };
    spec.combine = [](const long& a, const long& b) { return a + b; };
    spec.cpu_flops_per_item = 10.0;
    spec.gpu_flops_per_item = 10.0;
    spec.ai_cpu = 5.0;
    spec.ai_gpu = 5.0;
    spec.item_bytes = 2.0;

    sim::Simulator sim;
    Cluster cluster(sim, nodes, NodeConfig{});
    JobConfig cfg;
    cfg.scheduling = (seed % 2 == 0) ? SchedulingMode::kDynamic
                                     : SchedulingMode::kStatic;
    auto res = run_job(cluster, spec, cfg, n);
    EXPECT_EQ(res.output, want) << "nodes=" << nodes << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, ShuffleProperty,
                         ::testing::Values(1, 2, 3, 5, 8));

// -- partition coverage --------------------------------------------------------------

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(PartitionProperty, EveryItemAssignedExactlyOnce) {
  const auto [nodes, parts_per_node, n_items] = GetParam();
  MapReduceSpec<int, long> spec;
  spec.name = "coverage";
  spec.cpu_map = [](const InputSlice& s, Emitter<int, long>& e) {
    // Emit each index once: the reduced sum of indices must match the
    // arithmetic series if and only if coverage is exact and disjoint.
    long sum = 0;
    for (std::size_t i = s.begin; i < s.end; ++i) {
      sum += static_cast<long>(i);
    }
    e.emit(0, sum);
    e.emit(1, static_cast<long>(s.size()));
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };
  spec.cpu_flops_per_item = 10.0;
  spec.gpu_flops_per_item = 10.0;
  spec.ai_cpu = 5.0;
  spec.ai_gpu = 5.0;
  spec.item_bytes = 2.0;

  sim::Simulator sim;
  Cluster cluster(sim, nodes, NodeConfig{});
  JobConfig cfg;
  cfg.partitions_per_node = parts_per_node;
  auto res = run_job(cluster, spec, cfg, n_items);
  const auto n = static_cast<long>(n_items);
  EXPECT_EQ(res.output.at(0), n * (n - 1) / 2);
  EXPECT_EQ(res.output.at(1), n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionProperty,
    ::testing::Values(std::tuple(1, 1, 7ul), std::tuple(2, 2, 1000ul),
                      std::tuple(3, 2, 10ul), std::tuple(4, 5, 9999ul),
                      std::tuple(8, 2, 64ul), std::tuple(5, 3, 12345ul)));

// -- randomized DES stress ------------------------------------------------------------

sim::Process chaotic_worker(sim::Simulator& sim, sim::Channel<int>& in,
                            sim::Channel<int>& out, sim::Resource& res,
                            Rng& rng, int& processed) {
  for (;;) {
    auto v = co_await in.recv();
    if (!v) break;
    co_await res.acquire();
    sim::ResourceGuard g(res, 1);
    co_await sim::delay(sim, rng.uniform(0.0, 1e-3));
    ++processed;
    if (!out.closed()) out.send(*v + 1);
  }
}

TEST(DesStress, RandomPipelinesDrainCompletely) {
  for (std::uint64_t seed : {3ull, 99ull, 2026ull}) {
    Rng rng(seed);
    sim::Simulator sim;
    sim::Channel<int> stage1(sim), stage2(sim), sink(sim);
    sim::Resource res(sim, 1 + rng.uniform_index(4));
    int p1 = 0, p2 = 0;
    const int workers1 = 1 + static_cast<int>(rng.uniform_index(4));
    const int workers2 = 1 + static_cast<int>(rng.uniform_index(4));
    for (int w = 0; w < workers1; ++w) {
      sim.spawn(chaotic_worker(sim, stage1, stage2, res, rng, p1));
    }
    for (int w = 0; w < workers2; ++w) {
      sim.spawn(chaotic_worker(sim, stage2, sink, res, rng, p2));
    }
    const int n = 50 + static_cast<int>(rng.uniform_index(200));
    for (int i = 0; i < n; ++i) stage1.send(i);
    stage1.close();
    // Close stage2 once all stage-1 items are through: schedule a closer
    // process that waits for the count.
    sim.spawn([](sim::Simulator& s, sim::Channel<int>& ch, int& count,
                 int total) -> sim::Process {
      while (count < total) co_await sim::delay(s, 1e-4);
      ch.close();
    }(sim, stage2, p1, n));
    sim.run();
    EXPECT_EQ(p1, n) << "seed " << seed;
    EXPECT_EQ(p2, n) << "seed " << seed;
    EXPECT_EQ(sink.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(sim.idle());
  }
}

TEST(DesStress, ClockIsMonotoneUnderRandomScheduling) {
  Rng rng(7);
  sim::Simulator sim;
  double last_seen = -1.0;
  bool monotone = true;
  std::function<void(int)> chain = [&](int depth) {
    if (sim.now() < last_seen) monotone = false;
    last_seen = sim.now();
    if (depth <= 0) return;
    const int fanout = 1 + static_cast<int>(rng.uniform_index(3));
    for (int i = 0; i < fanout; ++i) {
      sim.schedule_after(rng.uniform(0.0, 1.0),
                         [&chain, depth] { chain(depth - 1); });
    }
  };
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(rng.uniform(0.0, 1.0), [&chain] { chain(6); });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_GT(sim.events_dispatched(), 100u);
}

// -- linear scaling of modeled time ---------------------------------------------------

TEST(ModeledScaling, ElapsedGrowsLinearlyWithInput) {
  auto elapsed = [](std::size_t n) {
    sim::Simulator sim;
    Cluster cluster(sim, 2, NodeConfig{});
    MapReduceSpec<int, long> spec;
    spec.name = "linear";
    spec.cpu_map = [](const InputSlice&, Emitter<int, long>& e) {
      e.emit(0, 1);
    };
    spec.combine = [](const long& a, const long& b) { return a + b; };
    // Enough flops per item that compute dominates the runtime's fixed
    // per-job costs; linearity is a property of the compute regime.
    spec.cpu_flops_per_item = 5000.0;
    spec.gpu_flops_per_item = 5000.0;
    spec.ai_cpu = 50.0;
    spec.ai_gpu = 50.0;
    spec.gpu_data_cached = true;
    spec.item_bytes = 100.0;
    JobConfig cfg;
    cfg.mode = ExecutionMode::kModeled;
    cfg.charge_job_startup = false;
    return run_job(cluster, spec, cfg, n).stats.elapsed;
  };
  const double t1 = elapsed(2000000);
  const double t2 = elapsed(4000000);
  const double t4 = elapsed(8000000);
  EXPECT_NEAR(t2 / t1, 2.0, 0.15);
  EXPECT_NEAR(t4 / t2, 2.0, 0.15);
}

}  // namespace
}  // namespace prs::core
