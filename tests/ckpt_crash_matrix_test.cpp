// Crash-matrix integration tests for checkpoint/restart: every iterative
// app x crash point (early / mid / late) x schedule policy. A node_crash is
// injected mid-run; the run halts on the crashed iteration (OnCrash::kHalt),
// a fresh "process" (fresh Simulator + Cluster, full node set) resumes from
// the latest snapshot, and the final application state must be byte-identical
// to the fault-free golden run, with every distinct iteration counted exactly
// once in the stats. Also covered: in-place survivor recovery (kRecover),
// checkpoint-enabled fault-free runs, and resuming an already-finished run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/cmeans.hpp"
#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "apps/stencil.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/store.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "data/dataset.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"

namespace prs::apps {
namespace {

constexpr int kNodes = 4;
constexpr std::uint64_t kDataSeed = 77;
constexpr std::uint64_t kAppSeed = 99;
constexpr std::uint64_t kFaultSeed = 1;

std::string hex_digest(const ckpt::Writer& w) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(ckpt::fnv1a64(w.bytes())));
  return buf;
}

std::string format_seconds(double t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", t);
  return std::string(buf) + "s";
}

/// Runs one app end-to-end and digests its final state. The digest covers
/// every float the app carries across iterations, so any divergence in any
/// iteration shows up.
using AppRunner = std::function<std::string(
    core::Cluster&, const core::JobConfig&, const ckpt::CheckpointConfig*,
    core::JobStats*)>;

std::string run_cmeans(core::Cluster& cluster, const core::JobConfig& cfg,
                       const ckpt::CheckpointConfig* ckp,
                       core::JobStats* stats) {
  Rng rng(kDataSeed);
  auto ds = data::generate_blobs(rng, 240, 3, 3, 10.0, 1.0);
  CmeansParams p;
  p.clusters = 3;
  p.max_iterations = 5;
  p.epsilon = 0.0;  // never converge early: fixed iteration count
  p.seed = kAppSeed;
  auto res = cmeans_prs(cluster, ds.points, p, cfg, stats, ckp);
  ckpt::Writer w;
  ckpt::put_matrix(w, res.centers);
  w.f64(res.objective);
  w.i32(res.iterations);
  return hex_digest(w);
}

std::string run_kmeans(core::Cluster& cluster, const core::JobConfig& cfg,
                       const ckpt::CheckpointConfig* ckp,
                       core::JobStats* stats) {
  Rng rng(kDataSeed);
  auto ds = data::generate_blobs(rng, 240, 3, 3, 10.0, 1.0);
  KmeansParams p;
  p.clusters = 3;
  p.max_iterations = 5;
  p.epsilon = 0.0;
  p.seed = kAppSeed;
  auto res = kmeans_prs(cluster, ds.points, p, cfg, stats, ckp);
  ckpt::Writer w;
  ckpt::put_matrix(w, res.centers);
  w.f64(res.inertia);
  w.i32(res.iterations);
  return hex_digest(w);
}

std::string run_gmm(core::Cluster& cluster, const core::JobConfig& cfg,
                    const ckpt::CheckpointConfig* ckp,
                    core::JobStats* stats) {
  Rng rng(kDataSeed);
  auto ds = data::generate_blobs(rng, 240, 3, 3, 10.0, 1.0);
  GmmParams p;
  p.components = 3;
  p.max_iterations = 5;
  p.epsilon = 0.0;
  p.seed = kAppSeed;
  auto model = gmm_prs(cluster, ds.points, p, cfg, stats, ckp);
  ckpt::Writer w;
  w.u64(model.weights.size());
  for (double wm : model.weights) w.f64(wm);
  ckpt::put_matrix(w, model.means);
  ckpt::put_matrix(w, model.variances);
  w.f64(model.log_likelihood);
  w.i32(model.iterations);
  return hex_digest(w);
}

linalg::MatrixD stencil_grid() {
  linalg::MatrixD g(26, 18, 0.0);
  for (std::size_t c = 0; c < g.cols(); ++c) {
    g(0, c) = 1.0;
    g(g.rows() - 1, c) = std::sin(0.3 * static_cast<double>(c));
  }
  for (std::size_t r = 0; r < g.rows(); ++r) {
    g(r, 0) = 0.5;
    g(r, g.cols() - 1) = -0.25;
  }
  return g;
}

std::string run_stencil(core::Cluster& cluster, const core::JobConfig& cfg,
                        const ckpt::CheckpointConfig* ckp,
                        core::JobStats* stats) {
  StencilParams p;
  p.max_iterations = 6;
  p.epsilon = 0.0;
  auto res = stencil_prs(cluster, stencil_grid(), p, cfg, stats, ckp);
  ckpt::Writer w;
  ckpt::put_matrix(w, res.grid);
  w.f64(res.residual);
  w.i32(res.iterations);
  return hex_digest(w);
}

struct AppEntry {
  const char* name;
  AppRunner run;
};

const AppEntry kApps[] = {
    {"cmeans", run_cmeans},
    {"kmeans", run_kmeans},
    {"gmm", run_gmm},
    {"stencil", run_stencil},
};

struct RunResult {
  std::string digest;
  core::JobStats stats;
  bool crashed = false;  // run halted on a node crash (OnCrash::kHalt)
  std::string error;
};

/// One complete "process": fresh simulator, fresh full cluster, fresh policy
/// instance. Checkpoint state crosses runs only through `store`.
RunResult run_once(const AppEntry& app, const std::string& policy_name,
                   const std::string& fault_spec,
                   ckpt::CheckpointStore* store,
                   ckpt::OnCrash on_crash = ckpt::OnCrash::kHalt) {
  sim::Simulator simu;
  core::Cluster cluster(simu, kNodes, core::NodeConfig{});
  core::JobConfig cfg;
  cfg.mode = core::ExecutionMode::kFunctional;
  // Skip the large one-time startup charge so the crash fractions below map
  // onto distinct iterations instead of all landing inside iteration 0.
  cfg.charge_job_startup = false;
  auto policy = core::make_policy(policy_name);
  cfg.policy = policy.get();

  std::unique_ptr<fault::FaultInjector> injector;
  if (!fault_spec.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        simu, fault::FaultPlan::parse(fault_spec), kFaultSeed);
    cfg.faults = injector.get();
  }

  ckpt::CheckpointConfig ck;
  const ckpt::CheckpointConfig* ckp = nullptr;
  if (store != nullptr) {
    ck.store = store;
    ck.interval = 2;
    ck.recover = true;
    ck.on_crash = on_crash;
    ck.prefix = app.name;
    ck.run_seed = kAppSeed;
    ck.fault_seed = kFaultSeed;
    ckp = &ck;
  }

  RunResult out;
  try {
    out.digest = app.run(cluster, cfg, ckp, &out.stats);
  } catch (const Error& e) {
    out.crashed = true;
    out.error = e.what();
  }
  return out;
}

// -- the matrix -------------------------------------------------------------

TEST(CkptCrashMatrix, EveryAppRecoversByteIdenticallyFromEveryCrashPoint) {
  // Early / mid / late fractions of the golden run's virtual span. Early
  // lands in iteration 0 (only the baseline snapshot exists), late lands in
  // the final iterations (the run resumes from a mid-run snapshot).
  const double fracs[] = {0.02, 0.5, 0.97};

  for (const AppEntry& app : kApps) {
    for (const char* policy : {"static", "adaptive"}) {
      const RunResult golden = run_once(app, policy, "", nullptr);
      ASSERT_FALSE(golden.crashed) << app.name << "/" << policy
                                   << ": " << golden.error;
      const int expected_iters = golden.stats.iterations;
      ASSERT_GE(expected_iters, 4) << app.name;
      ASSERT_GT(golden.stats.elapsed, 0.0);

      for (double frac : fracs) {
        SCOPED_TRACE(std::string(app.name) + "/" + policy + " crash@" +
                     std::to_string(frac));
        ckpt::MemoryCheckpointStore store;
        const std::string spec =
            "node_crash:node2:t=" +
            format_seconds(frac * golden.stats.elapsed);

        const RunResult crashed = run_once(app, policy, spec, &store);
        if (crashed.crashed) {
          EXPECT_NE(crashed.error.find("node crash during iteration"),
                    std::string::npos)
              << crashed.error;
          // Fresh process, full cluster, no faults: replay from the latest
          // snapshot must reproduce the fault-free bytes, and the stats must
          // count each distinct iteration exactly once (no double-replay).
          const RunResult resumed = run_once(app, policy, "", &store);
          ASSERT_FALSE(resumed.crashed) << resumed.error;
          EXPECT_EQ(resumed.digest, golden.digest);
          EXPECT_EQ(resumed.stats.iterations, expected_iters);
        } else {
          // The crash activated after the last iteration's work: the
          // fault-tolerant path ran end to end and must still match the
          // fast-path bytes (rank-ordered shuffle combine).
          EXPECT_EQ(crashed.digest, golden.digest);
          EXPECT_EQ(crashed.stats.iterations, expected_iters);
        }
      }
    }
  }
}

TEST(CkptCrashMatrix, CheckpointingAloneDoesNotChangeResults) {
  for (const AppEntry& app : kApps) {
    const RunResult golden = run_once(app, "static", "", nullptr);
    ckpt::MemoryCheckpointStore store;
    const RunResult with_ckpt = run_once(app, "static", "", &store);
    ASSERT_FALSE(with_ckpt.crashed) << with_ckpt.error;
    EXPECT_EQ(with_ckpt.digest, golden.digest) << app.name;
    EXPECT_EQ(with_ckpt.stats.iterations, golden.stats.iterations);
    // Snapshot IO is on the books: the checkpointed run takes longer on the
    // virtual clock even though the numerics are untouched.
    EXPECT_GT(with_ckpt.stats.elapsed, golden.stats.elapsed) << app.name;
    EXPECT_FALSE(ckpt::latest_snapshot_key(store, app.name).empty());
  }
}

TEST(CkptCrashMatrix, ResumingAFinishedRunReplaysNothing) {
  const AppEntry& app = kApps[0];  // cmeans
  const RunResult golden = run_once(app, "static", "", nullptr);
  ckpt::MemoryCheckpointStore store;
  const RunResult first = run_once(app, "static", "", &store);
  ASSERT_FALSE(first.crashed) << first.error;

  const RunResult again = run_once(app, "static", "", &store);
  ASSERT_FALSE(again.crashed) << again.error;
  EXPECT_EQ(again.digest, golden.digest);
  EXPECT_EQ(again.stats.iterations, golden.stats.iterations);
  // The resumed run restored the final snapshot and replayed no work: the
  // task counters are exactly the restored totals, and the only new virtual
  // time is the restore IO (well under one iteration).
  EXPECT_EQ(again.stats.map_tasks, first.stats.map_tasks);
  EXPECT_GE(again.stats.elapsed, first.stats.elapsed - 1e-12);
  EXPECT_LT(again.stats.elapsed - first.stats.elapsed, 0.005);
}

TEST(CkptCrashMatrix, InPlaceRecoveryContinuesOnSurvivors) {
  const AppEntry& app = kApps[0];  // cmeans
  const RunResult golden = run_once(app, "static", "", nullptr);
  ASSERT_FALSE(golden.crashed);

  ckpt::MemoryCheckpointStore store;
  const std::string spec =
      "node_crash:node2:t=" + format_seconds(0.5 * golden.stats.elapsed);
  const RunResult recovered =
      run_once(app, "static", spec, &store, ckpt::OnCrash::kRecover);

  // In-place recovery completes in the same process on the survivors. The
  // re-split changes block boundaries, so bytes may differ from the golden
  // run — the contract is accounting: every distinct iteration exactly once,
  // with the wasted round and the blacklisting visible in the stats.
  ASSERT_FALSE(recovered.crashed) << recovered.error;
  EXPECT_EQ(recovered.stats.iterations, golden.stats.iterations);
  EXPECT_GT(recovered.stats.job_attempts, 1);
  EXPECT_GT(recovered.stats.blacklisted_nodes, 0);
  EXPECT_FALSE(recovered.digest.empty());
}

}  // namespace
}  // namespace prs::apps
