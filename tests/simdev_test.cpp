// Unit tests for the device models: spec factories, workload algebra, the
// region allocator, GPU streams/copy/kernel timing, and the CPU core pool.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/units.hpp"
#include "simdev/cpu_device.hpp"
#include "simdev/device_spec.hpp"
#include "simdev/gpu_device.hpp"
#include "simdev/region.hpp"
#include "simdev/workload.hpp"
#include "simtime/process.hpp"

namespace prs::simdev {
namespace {

using sim::Simulator;
using units::kGiB;

// -- DeviceSpec ----------------------------------------------------------------

TEST(DeviceSpec, FactoriesMatchTable4) {
  const DeviceSpec cpu = delta_cpu();
  EXPECT_EQ(cpu.kind, DeviceKind::kCpu);
  EXPECT_EQ(cpu.cores, 12);
  EXPECT_EQ(cpu.memory_bytes, 192 * kGiB);

  const DeviceSpec gpu = delta_c2070();
  EXPECT_EQ(gpu.kind, DeviceKind::kGpu);
  EXPECT_EQ(gpu.cores, 448);
  EXPECT_EQ(gpu.memory_bytes, 6 * kGiB);
  EXPECT_EQ(gpu.hardware_queues, 1);  // Fermi

  const DeviceSpec k20 = bigred2_k20();
  EXPECT_EQ(k20.cores, 2496);
  EXPECT_GT(k20.hardware_queues, 1);  // Kepler Hyper-Q

  const DeviceSpec br2 = bigred2_cpu();
  EXPECT_EQ(br2.cores, 32);
}

TEST(DeviceSpec, RidgePointIsPeakOverBandwidth) {
  DeviceSpec s = delta_cpu();
  EXPECT_DOUBLE_EQ(s.ridge_point(), s.peak_flops / s.dram_bandwidth);
  // Calibration sanity: Delta CPU ridge ~3.25 flops/byte, so GEMV (AI=2)
  // sits below it — the regime Table 5 exercises.
  EXPECT_NEAR(s.ridge_point(), 3.25, 0.01);
}

// -- Workload ------------------------------------------------------------------

TEST(Workload, ArithmeticIntensity) {
  Workload w{1000.0, 0.0, 0.0, 500.0};
  EXPECT_DOUBLE_EQ(w.arithmetic_intensity(), 2.0);
  Workload zero;
  EXPECT_THROW(zero.arithmetic_intensity(), InvalidArgument);
}

TEST(Workload, ScaledSplitsProportionally) {
  Workload w{100.0, 10.0, 4.0, 50.0};
  Workload h = w.scaled(0.25);
  EXPECT_DOUBLE_EQ(h.flops, 25.0);
  EXPECT_DOUBLE_EQ(h.bytes_in, 2.5);
  EXPECT_DOUBLE_EQ(h.bytes_out, 1.0);
  EXPECT_DOUBLE_EQ(h.mem_traffic, 12.5);
  EXPECT_THROW(w.scaled(-0.1), InvalidArgument);
}

TEST(Workload, AdditionAccumulates) {
  Workload a{1, 2, 3, 4}, b{10, 20, 30, 40};
  Workload c = a + b;
  EXPECT_DOUBLE_EQ(c.flops, 11);
  EXPECT_DOUBLE_EQ(c.bytes_in, 22);
  EXPECT_DOUBLE_EQ(c.bytes_out, 33);
  EXPECT_DOUBLE_EQ(c.mem_traffic, 44);
}

// -- Region allocator -----------------------------------------------------------

TEST(Region, AllocatesDistinctAlignedBlocks) {
  Region r(1024);
  void* a = r.allocate(100);
  void* b = r.allocate(100);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(std::max_align_t), 0u);
  std::memset(a, 0xAB, 100);
  std::memset(b, 0xCD, 100);
  EXPECT_EQ(static_cast<unsigned char*>(a)[99], 0xAB);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xCD);
}

TEST(Region, CustomAlignmentRespected) {
  Region r;
  (void)r.allocate(3);
  void* p = r.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  EXPECT_THROW(r.allocate(8, 3), InvalidArgument);  // not a power of two
}

TEST(Region, GrowsBeyondInitialChunk) {
  Region r(128);
  for (int i = 0; i < 100; ++i) (void)r.allocate(64);
  EXPECT_GT(r.chunk_count(), 1u);
  EXPECT_EQ(r.bytes_allocated(), 6400u);
  EXPECT_GE(r.bytes_reserved(), r.bytes_allocated());
}

TEST(Region, OversizedRequestGetsDedicatedChunk) {
  Region r(64);
  void* p = r.allocate(10000);
  EXPECT_NE(p, nullptr);
  std::memset(p, 0, 10000);
}

TEST(Region, ClearReleasesEverythingAtOnce) {
  Region r(128);
  for (int i = 0; i < 50; ++i) (void)r.allocate(64);
  r.clear();
  EXPECT_EQ(r.bytes_allocated(), 0u);
  EXPECT_EQ(r.allocation_count(), 0u);
  EXPECT_EQ(r.chunk_count(), 1u);  // largest chunk kept for reuse
  void* p = r.allocate(64);
  EXPECT_NE(p, nullptr);
}

TEST(Region, ZeroByteAllocationsGetDistinctPointers) {
  Region r;
  void* a = r.allocate(0);
  void* b = r.allocate(0);
  EXPECT_NE(a, b);
}

TEST(Region, TypedArrayAllocation) {
  Region r;
  double* xs = r.allocate_array<double>(16);
  for (int i = 0; i < 16; ++i) xs[i] = i;
  EXPECT_DOUBLE_EQ(xs[15], 15.0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(xs) % alignof(double), 0u);
}

// -- GpuDevice -------------------------------------------------------------------

DeviceSpec test_gpu() {
  DeviceSpec s;
  s.name = "test-gpu";
  s.kind = DeviceKind::kGpu;
  s.peak_flops = 100.0;      // 100 flop/s: easy numbers
  s.dram_bandwidth = 1000.0; // bytes/s
  s.pcie_bandwidth = 10.0;   // bytes/s
  s.cores = 4;
  s.memory_bytes = 1000;
  s.hardware_queues = 4;
  return s;
}

sim::Process run_kernel(Simulator& sim, GpuDevice& gpu, KernelDesc k,
                        std::vector<double>& done) {
  co_await gpu.default_stream().launch(std::move(k));
  done.push_back(sim.now());
}

TEST(GpuDevice, KernelDurationFollowsRoofline) {
  Simulator sim;
  GpuDevice gpu(sim, test_gpu());
  // Compute-bound: 200 flops at 100 flop/s = 2 s.
  KernelDesc compute{"c", Workload{200, 0, 0, 10}, 1.0, 1.0, nullptr};
  EXPECT_DOUBLE_EQ(gpu.kernel_duration(compute), 2.0);
  // Memory-bound: 2000 bytes at 1000 B/s = 2 s > 1 s compute.
  KernelDesc memory{"m", Workload{100, 0, 0, 2000}, 1.0, 1.0, nullptr};
  EXPECT_DOUBLE_EQ(gpu.kernel_duration(memory), 2.0);
  // Efficiency derates the peak.
  KernelDesc derated{"d", Workload{100, 0, 0, 10}, 0.5, 1.0, nullptr};
  EXPECT_DOUBLE_EQ(gpu.kernel_duration(derated), 2.0);
}

TEST(GpuDevice, KernelExecutesPayloadAtCompletionTime) {
  Simulator sim;
  GpuDevice gpu(sim, test_gpu());
  std::vector<double> done;
  int result = 0;
  KernelDesc k{"payload", Workload{100, 0, 0, 1}, 1.0, 1.0,
               [&] { result = 42; }};
  sim.spawn(run_kernel(sim, gpu, std::move(k), done));
  sim.run();
  EXPECT_EQ(result, 42);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(gpu.compute_busy_time(), 1.0);
  EXPECT_DOUBLE_EQ(gpu.flops_executed(), 100.0);
  EXPECT_EQ(gpu.kernels_launched(), 1u);
}

sim::Process staged_job(Simulator& sim, GpuDevice& gpu,
                        std::vector<double>& marks) {
  auto& s = gpu.default_stream();
  co_await s.memcpy_h2d(100.0);  // 10 s at 10 B/s
  marks.push_back(sim.now());
  // Named kernel desc: see the GCC-12 temporaries rule in process.hpp.
  KernelDesc k{"k", Workload{100, 0, 0, 1}, 1.0, 1.0, {}};
  co_await s.launch(std::move(k));
  marks.push_back(sim.now());
  co_await s.memcpy_d2h(50.0);  // 5 s
  marks.push_back(sim.now());
}

TEST(GpuDevice, StreamSerializesCopyKernelCopy) {
  Simulator sim;
  GpuDevice gpu(sim, test_gpu());
  std::vector<double> marks;
  sim.spawn(staged_job(sim, gpu, marks));
  sim.run();
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_DOUBLE_EQ(marks[0], 10.0);
  EXPECT_DOUBLE_EQ(marks[1], 11.0);
  EXPECT_DOUBLE_EQ(marks[2], 16.0);
  EXPECT_DOUBLE_EQ(gpu.pcie_bytes(), 150.0);
}

sim::Process stream_pipeline(Simulator&, Stream& s, double copy_bytes,
                             Workload w, sim::Promise<sim::Unit> done) {
  co_await s.memcpy_h2d(copy_bytes);
  KernelDesc k{"k", w, 1.0, 1.0, {}};
  co_await s.launch(std::move(k));
  done.set_value(sim::Unit{});
}

double two_stream_makespan(int hw_queues) {
  Simulator sim;
  DeviceSpec spec = test_gpu();
  spec.hardware_queues = hw_queues;
  GpuDevice gpu(sim, spec);
  Stream& s1 = gpu.create_stream();
  Stream& s2 = gpu.create_stream();
  // Each stream: 100-byte copy (10 s) + 1000-flop kernel (10 s).
  sim::Promise<sim::Unit> d1(sim), d2(sim);
  sim.spawn(stream_pipeline(sim, s1, 100.0, Workload{1000, 0, 0, 1}, d1));
  sim.spawn(stream_pipeline(sim, s2, 100.0, Workload{1000, 0, 0, 1}, d2));
  sim.run();
  return sim.now();
}

TEST(GpuDevice, HyperQOverlapsCopyWithCompute) {
  // Kepler-style (2 queues): stream 2's copy overlaps stream 1's kernel:
  // t=0..10 copy1; t=10..20 kernel1 || copy2; t=20..30 kernel2 => 30 s.
  EXPECT_DOUBLE_EQ(two_stream_makespan(2), 30.0);
}

TEST(GpuDevice, FermiSingleQueueSerializesStreams) {
  // One hardware queue: copy1, kernel1, copy2, kernel2 => 40 s.
  EXPECT_DOUBLE_EQ(two_stream_makespan(1), 40.0);
}

TEST(GpuDevice, MemoryAccountingAndExhaustion) {
  Simulator sim;
  GpuDevice gpu(sim, test_gpu());  // 1000 bytes capacity
  auto a = gpu.allocate(600);
  EXPECT_EQ(gpu.memory_used(), 600u);
  EXPECT_THROW(gpu.allocate(500), ResourceExhausted);
  {
    auto b = gpu.allocate(400);
    EXPECT_EQ(gpu.memory_used(), 1000u);
  }
  EXPECT_EQ(gpu.memory_used(), 600u);  // RAII released b
  a.release();
  EXPECT_EQ(gpu.memory_used(), 0u);
}

TEST(GpuDevice, AllocationMoveTransfersOwnership) {
  Simulator sim;
  GpuDevice gpu(sim, test_gpu());
  DeviceAllocation a = gpu.allocate(100);
  DeviceAllocation b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(gpu.memory_used(), 100u);
}

TEST(GpuDevice, LaunchOverheadCharged) {
  Simulator sim;
  DeviceSpec spec = test_gpu();
  spec.kernel_launch_overhead = 0.5;
  GpuDevice gpu(sim, spec);
  std::vector<double> done;
  sim.spawn(run_kernel(sim, gpu,
                       KernelDesc{"k", Workload{100, 0, 0, 1}, 1.0, 1.0, {}},
                       done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 1.5);
}

TEST(GpuDevice, RejectsInvalidEfficiency) {
  Simulator sim;
  GpuDevice gpu(sim, test_gpu());
  EXPECT_THROW(gpu.default_stream().launch(
                   KernelDesc{"k", Workload{1, 0, 0, 1}, 0.0, 1.0, {}}),
               InvalidArgument);
  EXPECT_THROW(gpu.default_stream().launch(
                   KernelDesc{"k", Workload{1, 0, 0, 1}, 1.0, 1.5, {}}),
               InvalidArgument);
}

// -- CpuDevice -------------------------------------------------------------------

DeviceSpec test_cpu() {
  DeviceSpec s;
  s.name = "test-cpu";
  s.kind = DeviceKind::kCpu;
  s.peak_flops = 400.0;       // 4 cores x 100 flop/s
  s.dram_bandwidth = 4000.0;  // bytes/s
  s.cores = 4;
  s.memory_bytes = 1 << 20;
  return s;
}

sim::Process run_cpu_task(Simulator& sim, CpuDevice& cpu, CpuTask t,
                          std::vector<double>& done) {
  co_await cpu.submit(std::move(t));
  done.push_back(sim.now());
}

TEST(CpuDevice, TaskDurationUsesPerCoreSlices) {
  Simulator sim;
  CpuDevice cpu(sim, test_cpu());
  // Per-core: 100 flop/s, 1000 B/s.
  CpuTask compute{"c", Workload{200, 0, 0, 10}, 1.0, 1.0, {}};
  EXPECT_DOUBLE_EQ(cpu.task_duration(compute), 2.0);
  CpuTask memory{"m", Workload{100, 0, 0, 3000}, 1.0, 1.0, {}};
  EXPECT_DOUBLE_EQ(cpu.task_duration(memory), 3.0);
}

TEST(CpuDevice, FourCoresRunFourTasksConcurrently) {
  Simulator sim;
  CpuDevice cpu(sim, test_cpu());
  std::vector<double> done;
  for (int i = 0; i < 8; ++i) {
    sim.spawn(run_cpu_task(sim, cpu,
                           CpuTask{"t", Workload{100, 0, 0, 1}, 1.0, 1.0, {}},
                           done));
  }
  sim.run();
  ASSERT_EQ(done.size(), 8u);
  // Two waves of 4 tasks, 1 s each.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(done[static_cast<size_t>(i)], 1.0);
  for (int i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(done[static_cast<size_t>(i)], 2.0);
  EXPECT_EQ(cpu.tasks_executed(), 8u);
  EXPECT_DOUBLE_EQ(cpu.flops_executed(), 800.0);
}

TEST(CpuDevice, ReservedCoresLimitConcurrency) {
  Simulator sim;
  CpuDevice cpu(sim, test_cpu(), /*reserved_cores=*/2);
  EXPECT_EQ(cpu.cores(), 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(run_cpu_task(sim, cpu,
                           CpuTask{"t", Workload{100, 0, 0, 1}, 1.0, 1.0, {}},
                           done));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // two waves of two
}

TEST(CpuDevice, SaturatedAggregateMatchesRoofline) {
  // 8 memory-bound tasks of 1000 bytes each on 4 cores: per-core bw
  // 1000 B/s -> aggregate 4000 B/s = spec DRAM bandwidth.
  Simulator sim;
  CpuDevice cpu(sim, test_cpu());
  std::vector<double> done;
  for (int i = 0; i < 8; ++i) {
    sim.spawn(run_cpu_task(
        sim, cpu, CpuTask{"t", Workload{1, 0, 0, 1000}, 1.0, 1.0, {}}, done));
  }
  sim.run();
  // 8000 bytes total / 4000 B/s aggregate = 2 s.
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(CpuDevice, PayloadRunsOnCompletion) {
  Simulator sim;
  CpuDevice cpu(sim, test_cpu());
  int x = 0;
  std::vector<double> done;
  sim.spawn(run_cpu_task(
      sim, cpu,
      CpuTask{"t", Workload{100, 0, 0, 1}, 1.0, 1.0, [&] { x = 7; }}, done));
  sim.run();
  EXPECT_EQ(x, 7);
}

TEST(CpuDevice, RejectsGpuSpec) {
  Simulator sim;
  EXPECT_THROW(CpuDevice(sim, test_gpu()), InvalidArgument);
}

TEST(GpuDevice, RejectsCpuSpec) {
  Simulator sim;
  EXPECT_THROW(GpuDevice(sim, test_cpu()), InvalidArgument);
}

}  // namespace
}  // namespace prs::simdev
