// Tests for the prs::svc service layer: the virtual-GPU pool, the stride
// fair-share scheduler, admission control, the job server (digest equality
// with single-shot runs, 2:1 fair share within 5%, deterministic quota
// rejection, leak-free cancellation) and the socket line protocol.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "fault/injector.hpp"
#include "simdev/virtual_gpu.hpp"
#include "svc/admission.hpp"
#include "svc/fair_share.hpp"
#include "svc/job_spec.hpp"
#include "svc/launcher.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"
#include "svc/stats_io.hpp"

namespace prs::svc {
namespace {

// ---------------------------------------------------------------- vGPU pool

simdev::VGpuPoolConfig pool_cfg(int cards, int slots) {
  simdev::VGpuPoolConfig cfg;
  cfg.cards = cards;
  cfg.slots_per_card = slots;
  return cfg;
}

TEST(VGpuPool, CapacityAndOversubscription) {
  simdev::VirtualGpuPool pool(pool_cfg(2, 4));
  EXPECT_EQ(pool.capacity(), 8);
  EXPECT_EQ(pool.free_slots(), 8);
  EXPECT_TRUE(pool.can_acquire(8));
  EXPECT_FALSE(pool.can_acquire(9));
}

TEST(VGpuPool, PlacementIsDeterministicLeastLoaded) {
  simdev::VirtualGpuPool pool(pool_cfg(3, 2));
  auto a = pool.acquire("a", 2);
  // Least-loaded with lowest-index ties: cards 0 and 1.
  EXPECT_EQ(a.cards(), (std::vector<int>{0, 1}));
  auto b = pool.acquire("b", 3);
  // Card 2 (empty) first, then 0 and 1 again.
  EXPECT_EQ(b.cards(), (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(pool.card_vgpus(0), 2);
  EXPECT_EQ(pool.card_vgpus(1), 2);
  EXPECT_EQ(pool.card_vgpus(2), 1);
}

TEST(VGpuPool, ExhaustionThrowsAndReleaseRestores) {
  simdev::VirtualGpuPool pool(pool_cfg(1, 2));
  auto a = pool.acquire("a", 2);
  EXPECT_THROW(pool.acquire("b", 1), ResourceExhausted);
  a.release();
  EXPECT_EQ(pool.free_slots(), 2);
  EXPECT_EQ(pool.active_leases(), 0);
  EXPECT_NO_THROW(pool.acquire("b", 1));
}

TEST(VGpuPool, UsageAccountingClearsOnRelease) {
  simdev::VirtualGpuPool pool(pool_cfg(1, 2));
  auto a = pool.acquire("a", 1);
  auto b = pool.acquire("b", 1);
  pool.report_usage(a, 3, 1000);
  pool.report_usage(b, 2, 500);
  EXPECT_EQ(pool.open_streams(), 5u);
  EXPECT_EQ(pool.memory_in_use(), 1500u);
  // Replace, not accumulate.
  pool.report_usage(a, 1, 100);
  EXPECT_EQ(pool.open_streams(), 3u);
  EXPECT_EQ(pool.memory_in_use(), 600u);
  a.release();
  EXPECT_EQ(pool.open_streams(), 2u);
  EXPECT_EQ(pool.memory_in_use(), 500u);
  b.release();
  EXPECT_EQ(pool.open_streams(), 0u);
  EXPECT_EQ(pool.memory_in_use(), 0u);
}

TEST(VGpuPool, MemoryQuotaShapesTheDeviceSpec) {
  simdev::VirtualGpuPool pool(pool_cfg(1, 2));
  const std::uint64_t physical = pool.config().card_spec.memory_bytes;
  auto capped = pool.acquire("a", 1, 4096);
  EXPECT_EQ(pool.vgpu_spec(capped).memory_bytes, 4096u);
  auto full = pool.acquire("b", 1, 0);
  EXPECT_EQ(pool.vgpu_spec(full).memory_bytes, physical);
  EXPECT_NE(pool.vgpu_spec(full).name, pool.config().card_spec.name)
      << "vGPU specs should be distinguishable from physical cards";
}

// ------------------------------------------------------------- fair share

TEST(StrideScheduler, TwoToOneGrantPattern) {
  TenantAccount a;
  a.name = "a";
  a.quota.weight = 2.0;
  TenantAccount b;
  b.name = "b";
  b.quota.weight = 1.0;
  int grants_a = 0;
  int grants_b = 0;
  for (int i = 0; i < 30; ++i) {
    std::vector<StrideCandidate> cands{{&a, 1}, {&b, 2}};
    const int pick = stride_pick(cands);
    ASSERT_GE(pick, 0);
    if (cands[static_cast<std::size_t>(pick)].tenant == &a) {
      stride_charge(a, 1.0);
      ++grants_a;
    } else {
      stride_charge(b, 1.0);
      ++grants_b;
    }
  }
  EXPECT_EQ(grants_a, 20);
  EXPECT_EQ(grants_b, 10);
}

TEST(StrideScheduler, TiesBreakByNameThenJobId) {
  TenantAccount a;
  a.name = "a";
  TenantAccount b;
  b.name = "b";
  // Equal pass: lexicographically smaller tenant wins.
  std::vector<StrideCandidate> cands{{&b, 1}, {&a, 2}};
  EXPECT_EQ(stride_pick(cands), 1);
  // Same tenant: lower job id wins.
  std::vector<StrideCandidate> same{{&a, 7}, {&a, 3}};
  EXPECT_EQ(stride_pick(same), 1);
  EXPECT_EQ(stride_pick({}), -1);
}

TEST(StrideScheduler, JoinClampPreventsBankedCredit) {
  TenantAccount idle;
  idle.name = "idle";
  TenantAccount busy;
  busy.name = "busy";
  stride_charge(busy, 100.0);
  stride_clamp_pass(idle, stride_min_pass({&busy}));
  EXPECT_DOUBLE_EQ(idle.pass, 100.0);
}

// -------------------------------------------------------------- admission

TEST(Admission, RejectionsAreDeterministic) {
  AdmissionController ctl(AdmissionConfig{4});
  TenantAccount t;
  t.name = "a";
  t.quota.max_vgpus = 2;
  JobSpec spec;
  spec.nodes = 4;
  spec.gpus = 1;  // needs 4 vGPUs
  auto d1 = ctl.check(&t, spec, 16, 0, false);
  auto d2 = ctl.check(&t, spec, 16, 0, false);
  EXPECT_EQ(d1.code, AdmitCode::kQuotaVgpus);
  EXPECT_EQ(d1.message, d2.message);
  EXPECT_NE(d1.message.find("'a'"), std::string::npos);

  EXPECT_EQ(ctl.check(nullptr, spec, 16, 0, false).code,
            AdmitCode::kUnknownTenant);
  EXPECT_EQ(ctl.check(&t, spec, 2, 0, false).code, AdmitCode::kTooLarge);
  EXPECT_EQ(ctl.check(&t, spec, 16, 0, true).code, AdmitCode::kDraining);
  JobSpec small;
  small.nodes = 1;
  EXPECT_EQ(ctl.check(&t, small, 16, 4, false).code, AdmitCode::kQueueFull);
  t.queued = t.quota.max_queued;
  EXPECT_EQ(ctl.check(&t, small, 16, 0, false).code, AdmitCode::kQuotaQueued);
}

// ---------------------------------------------------------------- JobSpec

TEST(JobSpecWire, TokensRoundTrip) {
  JobSpec spec;
  spec.app = "kmeans";
  spec.nodes = 3;
  spec.points = 4321;
  spec.functional = true;
  spec.seed = 99;
  spec.gpu_mem_bytes = 2048;
  const std::string tokens = spec.to_tokens();
  std::vector<std::string> toks;
  std::size_t pos = 0;
  while (pos < tokens.size()) {
    auto sp = tokens.find(' ', pos);
    if (sp == std::string::npos) sp = tokens.size();
    toks.push_back(tokens.substr(pos, sp - pos));
    pos = sp + 1;
  }
  JobSpec parsed = parse_job_spec(parse_kv_tokens(toks));
  EXPECT_EQ(parsed.app, "kmeans");
  EXPECT_EQ(parsed.nodes, 3);
  EXPECT_EQ(parsed.points, 4321u);
  EXPECT_TRUE(parsed.functional);
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_EQ(parsed.gpu_mem_bytes, 2048u);
  // Defaults survive the round trip.
  EXPECT_EQ(parsed.testbed, spec.testbed);
  EXPECT_EQ(parsed.iterations, spec.iterations);
}

TEST(JobSpecWire, ValidateRejectsBadCombinations) {
  JobSpec both;
  both.gpu_only = true;
  both.cpu_only = true;
  EXPECT_THROW(both.validate(), InvalidArgument);
  JobSpec unknown;
  unknown.app = "frobnicate";
  EXPECT_THROW(unknown.validate(), InvalidArgument);
  JobSpec modeled_stencil;
  modeled_stencil.app = "stencil";
  modeled_stencil.functional = false;
  EXPECT_THROW(modeled_stencil.validate(), InvalidArgument);
}

// ---------------------------------------------------------------- stats io

TEST(StatsIo, TextAndJsonCarryTheFields) {
  core::JobStats s;
  s.elapsed = 2.0;
  s.cpu_flops = 10.0;
  s.gpu_flops = 30.0;
  s.map_tasks = 7;
  const std::string text = job_stats_text(s, 2, nullptr);
  EXPECT_NE(text.find("-- runtime statistics --"), std::string::npos);
  EXPECT_NE(text.find("virtual time"), std::string::npos);
  EXPECT_NE(text.find("CPU share 25.0%"), std::string::npos);
  const std::string json = job_stats_json(s);
  EXPECT_NE(json.find("\"elapsed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"map_tasks\":7"), std::string::npos);
}

// -------------------------------------------------------------- job server

/// Runs `spec` exactly the way prs_run does (fresh simulator and cluster,
/// own policy/injector), returning the outcome — the digest oracle the
/// server must match.
LaunchOutcome run_single_shot(const JobSpec& spec) {
  sim::Simulator sim;
  core::NodeConfig node = spec.node_config();
  core::Cluster cluster(sim, spec.nodes, node);
  core::JobConfig cfg = spec.job_config();
  auto policy = core::make_policy(spec.policy);
  cfg.policy = policy.get();
  std::unique_ptr<fault::FaultInjector> injector;
  if (!spec.fault_spec.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        sim, fault::FaultPlan::parse(spec.fault_spec), spec.fault_seed);
    cfg.faults = injector.get();
  }
  Rng rng(spec.seed);
  return run_job_spec(spec, cluster, node, cfg, rng, nullptr);
}

JobSpec small_cmeans(int iterations) {
  JobSpec spec;
  spec.app = "cmeans";
  spec.nodes = 1;
  spec.gpus = 1;
  spec.points = 1500;
  spec.dims = 6;
  spec.clusters = 3;
  spec.iterations = iterations;
  spec.functional = true;
  spec.seed = 7;
  return spec;
}

JobServer::Config server_cfg(int cards, int slots, int max_queue = 32) {
  JobServer::Config cfg;
  cfg.pool.cards = cards;
  cfg.pool.slots_per_card = slots;
  cfg.admission.max_queue_depth = max_queue;
  return cfg;
}

TEST(JobServer, SubmittedJobMatchesSingleShotDigest) {
  const JobSpec spec = small_cmeans(6);
  const LaunchOutcome oracle = run_single_shot(spec);
  ASSERT_FALSE(oracle.digest.empty());

  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  auto res = server.submit("a", spec);
  ASSERT_TRUE(res.ok()) << res.decision.message;
  server.run_until_idle();
  const JobStatus st = server.status(res.job_id);
  EXPECT_EQ(st.state, JobState::kDone) << st.error;
  EXPECT_EQ(st.digest, oracle.digest);
  EXPECT_EQ(st.lines, oracle.lines);
  EXPECT_GT(st.stages, spec.iterations);  // one gate per iteration + tail
}

TEST(JobServer, ModeledAndWordcountDigestsMatchToo) {
  JobSpec modeled;
  modeled.app = "gmm";
  modeled.nodes = 2;
  modeled.points = 50000;
  modeled.dims = 20;
  modeled.clusters = 4;
  modeled.iterations = 4;
  modeled.functional = false;
  JobSpec wc;
  wc.app = "wordcount";
  wc.nodes = 2;
  wc.points = 800;
  wc.functional = true;
  wc.seed = 11;

  JobServer server(server_cfg(2, 2));
  server.add_tenant("a", TenantQuota{});
  auto r1 = server.submit("a", modeled);
  auto r2 = server.submit("a", wc);
  ASSERT_TRUE(r1.ok() && r2.ok());
  server.run_until_idle();
  EXPECT_EQ(server.status(r1.job_id).digest, run_single_shot(modeled).digest);
  EXPECT_EQ(server.status(r2.job_id).digest, run_single_shot(wc).digest);
}

TEST(JobServer, FaultInjectedJobMatchesSingleShotDigest) {
  JobSpec spec = small_cmeans(5);
  spec.fault_spec = "slow_node:node0:x2";
  spec.fault_seed = 3;
  const LaunchOutcome oracle = run_single_shot(spec);

  JobServer server(server_cfg(1, 1));
  server.add_tenant("a", TenantQuota{});
  auto res = server.submit("a", spec);
  ASSERT_TRUE(res.ok()) << res.decision.message;
  server.run_until_idle();
  const JobStatus st = server.status(res.job_id);
  EXPECT_EQ(st.state, JobState::kDone) << st.error;
  EXPECT_EQ(st.digest, oracle.digest);
}

// The acceptance test of the fair-share scheduler: two tenants with 2:1
// weights sharing one physical card (2x oversubscribed). Both submit an
// identical modeled job before the pump starts; while both are runnable,
// vnow advances only through a's or b's stages, which makes the share
// measurable exactly at a's completion:
// service_b = finish_vnow_a - service_a. The iteration counts are chosen
// so iteration work dominates the one-time stage-in cost (~1.2 vsec) —
// stride fairness is a steady-state property, and a job that ends before
// the passes converge would only measure that fixed setup stage.
TEST(JobServer, WeightedTenantsShareWithinFivePercent) {
  JobSpec spec;
  spec.app = "cmeans";
  spec.nodes = 1;
  spec.points = 2000;
  spec.dims = 8;
  spec.clusters = 4;
  spec.iterations = 1000;
  spec.functional = false;  // modeled: gated iterations, no real compute

  JobServer server(server_cfg(1, 2));
  TenantQuota heavy;
  heavy.weight = 2.0;
  TenantQuota light;
  light.weight = 1.0;
  server.add_tenant("a", heavy);
  server.add_tenant("b", light);

  auto ja = server.submit("a", spec);
  JobSpec longer = spec;
  longer.iterations = 3000;  // b outlives a, so a finishes under contention
  auto jb = server.submit("b", longer);
  ASSERT_TRUE(ja.ok() && jb.ok());
  server.run_until_idle();

  const JobStatus sa = server.status(ja.job_id);
  const JobStatus sb = server.status(jb.job_id);
  ASSERT_EQ(sa.state, JobState::kDone) << sa.error;
  ASSERT_EQ(sb.state, JobState::kDone) << sb.error;
  ASSERT_LT(sa.finish_vnow, sb.finish_vnow) << "a must finish first";

  const double service_a = sa.service;
  const double service_b_at_a_finish = sa.finish_vnow - sa.service;
  ASSERT_GT(service_b_at_a_finish, 0.0);
  const double ratio = service_a / service_b_at_a_finish;
  EXPECT_NEAR(ratio, 2.0, 2.0 * 0.05)
      << "weighted share off by more than 5%: a=" << service_a
      << " b=" << service_b_at_a_finish;
}

TEST(JobServer, QuotaBreachRejectsDeterministically) {
  JobServer server(server_cfg(4, 2));  // capacity 8
  TenantQuota quota;
  quota.max_vgpus = 2;
  server.add_tenant("a", quota);
  JobSpec big = small_cmeans(3);
  big.nodes = 4;  // needs 4 vGPUs > quota 2
  auto r1 = server.submit("a", big);
  auto r2 = server.submit("a", big);
  EXPECT_FALSE(r1.ok());
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r1.decision.code, AdmitCode::kQuotaVgpus);
  EXPECT_EQ(r1.decision.message, r2.decision.message);
  EXPECT_EQ(server.tenant_account("a").jobs_rejected, 2u);
  // Larger than the whole pool: a different, equally deterministic code.
  JobSpec huge = small_cmeans(3);
  huge.nodes = 9;
  TenantQuota wide;
  wide.max_vgpus = 64;
  server.add_tenant("wide", wide);
  EXPECT_EQ(server.submit("wide", huge).decision.code, AdmitCode::kTooLarge);
  // Unknown tenants never get in.
  EXPECT_EQ(server.submit("nobody", big).decision.code,
            AdmitCode::kUnknownTenant);
}

TEST(JobServer, QueueBoundAppliesBackpressure) {
  JobServer server(server_cfg(1, 1, /*max_queue=*/1));
  server.add_tenant("a", TenantQuota{});
  const JobSpec spec = small_cmeans(3);
  auto r1 = server.submit("a", spec);  // queued (pump not running)
  auto r2 = server.submit("a", spec);  // queue full
  EXPECT_TRUE(r1.ok());
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.decision.code, AdmitCode::kQueueFull);
  server.run_until_idle();
  EXPECT_EQ(server.status(r1.job_id).state, JobState::kDone);
  // With the queue drained, submission works again.
  EXPECT_TRUE(server.submit("a", spec).ok());
  server.run_until_idle();
}

TEST(JobServer, DrainRejectsNewJobs) {
  JobServer server(server_cfg(1, 1));
  server.add_tenant("a", TenantQuota{});
  server.drain();
  auto res = server.submit("a", small_cmeans(3));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.decision.code, AdmitCode::kDraining);
}

TEST(JobServer, CancelMidIterationLeaksNothing) {
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  JobSpec spec = small_cmeans(500);  // long enough to be mid-run
  server.start();
  auto res = server.submit("a", spec);
  ASSERT_TRUE(res.ok());
  // Let it pass a handful of iteration gates, then cancel mid-flight.
  ASSERT_TRUE(server.wait_for_stages(res.job_id, 5));
  EXPECT_TRUE(server.cancel(res.job_id));
  const JobStatus st = server.wait(res.job_id);
  EXPECT_EQ(st.state, JobState::kCancelled);
  EXPECT_GE(st.stages, 5);
  server.stop();
  // The leak checks: no leases, streams or device memory left behind.
  EXPECT_EQ(server.pool().active_leases(), 0);
  EXPECT_EQ(server.pool().open_streams(), 0u);
  EXPECT_EQ(server.pool().memory_in_use(), 0u);
  EXPECT_EQ(server.tenant_account("a").jobs_cancelled, 1u);
}

TEST(JobServer, CancelQueuedJobNeverRuns) {
  JobServer server(server_cfg(1, 1));
  server.add_tenant("a", TenantQuota{});
  auto res = server.submit("a", small_cmeans(3));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(server.cancel(res.job_id));  // pump never ran
  EXPECT_EQ(server.status(res.job_id).state, JobState::kCancelled);
  EXPECT_FALSE(server.cancel(res.job_id)) << "already terminal";
  server.run_until_idle();
  EXPECT_EQ(server.status(res.job_id).stages, 0);
}

TEST(JobServer, MemoryQuotaOverrunFailsTheOffendingJobOnly) {
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  JobSpec starved = small_cmeans(4);
  starved.gpu_mem_bytes = 256;  // far below the staging working set
  JobSpec fine = small_cmeans(4);
  auto r1 = server.submit("a", starved);
  auto r2 = server.submit("a", fine);
  ASSERT_TRUE(r1.ok() && r2.ok());
  server.run_until_idle();
  const JobStatus bad = server.status(r1.job_id);
  EXPECT_EQ(bad.state, JobState::kFailed);
  EXPECT_NE(bad.error.find("out of memory"), std::string::npos) << bad.error;
  EXPECT_EQ(server.status(r2.job_id).state, JobState::kDone);
  EXPECT_EQ(server.pool().active_leases(), 0);
  EXPECT_EQ(server.pool().memory_in_use(), 0u);
}

TEST(JobServer, MetricsCountTheLifecycle) {
  JobServer server(server_cfg(1, 1));
  server.add_tenant("a", TenantQuota{});
  auto ok = server.submit("a", small_cmeans(3));
  ASSERT_TRUE(ok.ok());
  server.run_until_idle();
  const std::string json = server.metrics_json();
  EXPECT_NE(json.find("\"svc.jobs_submitted\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"svc.jobs_completed\":1"), std::string::npos);
  EXPECT_NE(json.find("svc.queue_wait_vsec"), std::string::npos);
  EXPECT_GT(server.vnow(), 0.0);
  EXPECT_GT(server.tenant_service("a"), 0.0);
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, ParsesRequestsAndHeaders) {
  Request req = parse_request("submit tenant=a app=kmeans");
  EXPECT_EQ(req.verb, "SUBMIT");
  ASSERT_EQ(req.args.size(), 2u);
  auto kv = parse_kv_tokens(req.args);
  EXPECT_EQ(kv.at("tenant"), "a");
  EXPECT_EQ(kv.at("app"), "kmeans");
  EXPECT_THROW(parse_request("   "), InvalidArgument);
  EXPECT_THROW(parse_kv_tokens({"no-equals"}), InvalidArgument);
  EXPECT_EQ(header_field("OK id=12 lines=3", "lines", 0), 3);
  EXPECT_EQ(header_field("OK id=12", "lines", 0), 0);
}

TEST(Protocol, HandleRequestEndToEnd) {
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  bool shutdown = false;
  EXPECT_EQ(handle_request(server, "PING", &shutdown), "OK pong\n");

  const JobSpec spec = small_cmeans(4);
  const std::string submit =
      "SUBMIT tenant=a " + spec.to_tokens();
  const std::string resp = handle_request(server, submit, &shutdown);
  ASSERT_EQ(resp.rfind("OK id=", 0), 0u) << resp;
  server.run_until_idle();
  const std::string status = handle_request(server, "STATUS 1", &shutdown);
  EXPECT_NE(status.find("state=DONE"), std::string::npos) << status;
  EXPECT_NE(status.find(run_single_shot(spec).digest), std::string::npos);

  // Errors are ERR lines, not exceptions.
  EXPECT_EQ(handle_request(server, "STATUS 99", &shutdown).rfind("ERR ", 0),
            0u);
  EXPECT_EQ(handle_request(server, "SUBMIT tenant=ghost app=cmeans",
                           &shutdown)
                .rfind("ERR code=unknown_tenant", 0),
            0u);
  EXPECT_EQ(
      handle_request(server, "SUBMIT tenant=a app=nope", &shutdown).rfind(
          "ERR code=bad_spec", 0),
      0u);
  EXPECT_FALSE(shutdown);
  handle_request(server, "SHUTDOWN", &shutdown);
  EXPECT_TRUE(shutdown);
}

TEST(Protocol, SocketRoundTrip) {
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  server.start();
  const std::string path =
      "/tmp/prs_svc_test_" + std::to_string(::getpid()) + ".sock";
  SocketServer sock(path, [&server](const std::string& line, bool* sd) {
    return handle_request(server, line, sd);
  });

  SocketClient client(path);
  EXPECT_EQ(client.request("PING"), "OK pong\n");
  const JobSpec spec = small_cmeans(4);
  const std::string submitted =
      client.request("SUBMIT tenant=a " + spec.to_tokens());
  ASSERT_EQ(submitted.rfind("OK id=", 0), 0u) << submitted;
  const long id = header_field(submitted, "id", -1);
  ASSERT_GE(id, 1);
  const std::string done = client.request("WAIT " + std::to_string(id));
  EXPECT_NE(done.find("state=DONE"), std::string::npos) << done;
  // The continuation lines carry the job's result, digest included.
  EXPECT_NE(done.find("result digest: " + run_single_shot(spec).digest),
            std::string::npos)
      << done;
  sock.stop();
  server.stop();
}

// ------------------------------------------------- protocol hardening (fuzz)

/// Raw AF_UNIX connection for abuse the well-behaved SocketClient cannot
/// express: partial writes, silent hangs-up, oversized floods.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PRS_CHECK(fd_ >= 0, "socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    PRS_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
              "connect() failed");
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  void send(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return;  // server closed on us — that's allowed
      off += static_cast<std::size_t>(n);
    }
  }
  std::string read_some() {
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    return n > 0 ? std::string(buf, static_cast<std::size_t>(n)) : "";
  }

 private:
  int fd_ = -1;
};

/// Seeded garbage request line: random verbs, truncated SUBMITs, binary
/// noise, stray '=' tokens — everything short of an embedded newline.
std::string garbage_line(Rng& rng) {
  switch (rng.uniform_index(6)) {
    case 0: {  // random verb with random operands
      std::string line = "FROB";
      for (std::uint64_t i = 0; i < rng.uniform_index(4); ++i) {
        line += " tok" + std::to_string(rng.uniform_index(100));
      }
      return line;
    }
    case 1:  // SUBMIT with malformed tokens
      return "SUBMIT tenant=a app=cmeans =orphan points=abc";
    case 2:  // SUBMIT cut off mid-token
      return "SUBMIT tenant=a app=cme";
    case 3: {  // binary noise
      std::string line;
      for (std::uint64_t i = 0; i < 1 + rng.uniform_index(64); ++i) {
        char c = static_cast<char>(rng.uniform_index(256));
        if (c == '\n') c = ' ';
        line += c;
      }
      return line;
    }
    case 4:  // valid verb, nonsense job id
      return "WAIT not-a-number";
    default:  // empty-ish line
      return "   ";
  }
}

// The fuzz-lite acceptance: a storm of malformed, truncated, oversized and
// interleaved request lines plus silent clients must neither crash nor
// wedge the socket server — a PING afterwards still answers.
TEST(Protocol, FuzzLiteGarbageNeverWedgesTheServer) {
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  server.start();
  const std::string path =
      "/tmp/prs_fuzz_" + std::to_string(::getpid()) + ".sock";
  SocketServer sock(path, [&server](const std::string& line, bool* sd) {
    return handle_request(server, line, sd);
  });

  Rng rng(1234);
  for (int i = 0; i < 48; ++i) {
    SocketClient client(path);
    const std::string resp = client.request(garbage_line(rng));
    // Whatever the garbage was, the response is a well-formed ERR line —
    // never silence, never a crash.
    EXPECT_EQ(resp.rfind("ERR code=", 0), 0u) << resp;
    EXPECT_EQ(resp.back(), '\n');
  }

  {  // Oversized line: bounded buffer, explicit rejection, closed socket.
    RawConn conn(path);
    conn.send(std::string(SocketServer::kMaxLineBytes + 512, 'x'));
    const std::string resp = conn.read_some();
    EXPECT_NE(resp.find("ERR code=line_too_long"), std::string::npos) << resp;
  }
  {  // Interleaved request: bytes dribble in across several writes.
    RawConn conn(path);
    conn.send("PI");
    conn.send("NG");
    conn.send("\n");
    EXPECT_EQ(conn.read_some(), "OK pong\n");
  }
  {  // Silent client: connects, says nothing, hangs up.
    RawConn conn(path);
  }
  {  // Half a line, then hang up mid-request.
    RawConn conn(path);
    conn.send("SUBMIT tenant=a app=cme");
  }

  // The server survived it all and still serves well-formed traffic.
  SocketClient client(path);
  EXPECT_EQ(client.request("PING"), "OK pong\n");
  const std::string submitted =
      client.request("SUBMIT tenant=a " + small_cmeans(3).to_tokens());
  EXPECT_EQ(submitted.rfind("OK id=", 0), 0u) << submitted;
  sock.stop();
  server.stop();
}

TEST(Protocol, DedupKeyRidesTheWire) {
  JobServer server(server_cfg(1, 2));
  server.add_tenant("a", TenantQuota{});
  bool shutdown = false;
  const std::string submit =
      "SUBMIT tenant=a dedup=k1 " + small_cmeans(3).to_tokens();
  const std::string first = handle_request(server, submit, &shutdown);
  EXPECT_EQ(first, "OK id=1\n");
  // The retried SUBMIT is acknowledged with the same id, flagged deduped.
  const std::string again = handle_request(server, submit, &shutdown);
  EXPECT_EQ(again, "OK id=1 deduped=1\n");
  server.run_until_idle();
}

TEST(Protocol, QueueFullSubmitsGetRetryAfterAdvice) {
  JobServer server(server_cfg(1, 1, /*max_queue=*/1));
  server.add_tenant("a", TenantQuota{});
  bool shutdown = false;
  const std::string submit =
      "SUBMIT tenant=a " + small_cmeans(3).to_tokens();
  EXPECT_EQ(handle_request(server, submit, &shutdown), "OK id=1\n");
  // The queue bound is transient overload, not a hard error: the protocol
  // answers RETRY-AFTER with the advised backoff.
  const std::string shed = handle_request(server, submit, &shutdown);
  EXPECT_EQ(shed.rfind("RETRY-AFTER ", 0), 0u) << shed;
  EXPECT_NE(shed.find("code=queue_full"), std::string::npos) << shed;
  server.run_until_idle();
}

}  // namespace
}  // namespace prs::svc
