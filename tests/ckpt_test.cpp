// Tests for the checkpoint subsystem (prs::ckpt): the binary codec, the
// framed snapshot format (round-trip, truncation, corruption, version skew),
// the storage backends (shared contract, file persistence, prune/latest),
// JobStats field reflection (accumulate must cover every numeric field), and
// schedule-policy state serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/store.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/schedule_policy.hpp"
#include "linalg/matrix.hpp"

namespace prs::ckpt {
namespace {

// -- codec ------------------------------------------------------------------

TEST(CkptCodec, ScalarsRoundTripThroughTheWireFormat) {
  Writer w;
  w.u8(0);
  w.u8(255);
  w.u32(0xdeadbeefu);
  w.u64(0xfeedfacecafebeefull);
  w.i32(-1);
  w.i32(std::numeric_limits<std::int32_t>::min());
  w.i64(-42);
  w.f64(3.141592653589793);
  w.str("hello");

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 255u);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0xfeedfacecafebeefull);
  EXPECT_EQ(r.i32(), -1);
  EXPECT_EQ(r.i32(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(CkptCodec, AwkwardDoublesRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           -std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::epsilon()};
  Writer w;
  for (double v : values) w.f64(v);
  Reader r(w.bytes());
  for (double v : values) {
    // Bit equality, not value equality: NaN != NaN and -0.0 == 0.0 would
    // both hide codec bugs.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(CkptCodec, StringsWithEmbeddedNulsSurvive) {
  const std::string s("a\0b\0\0c", 6);
  Writer w;
  w.str(s);
  w.str("");
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), s);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(CkptCodec, ReaderThrowsInsteadOfReadingPastTheEnd) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes());
  EXPECT_THROW(r.u64(), Error);   // 4 bytes available, 8 requested
  EXPECT_EQ(r.u32(), 7u);         // the failed read consumed nothing
  EXPECT_THROW(r.u8(), Error);    // now empty

  // A huge declared string length must not wrap the bounds check.
  Writer w2;
  w2.u64(~0ull);
  Reader r2(w2.bytes());
  EXPECT_THROW(r2.str(), Error);
}

TEST(CkptCodec, MatrixRoundTripsAndBadDimsThrow) {
  linalg::MatrixD m(3, 4, 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      m(i, j) = static_cast<double>(i * 10 + j) / 7.0;
  Writer w;
  put_matrix(w, m);
  Reader r(w.bytes());
  linalg::MatrixD back;
  get_matrix(r, back);
  EXPECT_TRUE(back == m);
  EXPECT_TRUE(r.done());

  Writer bad;
  bad.u64(1ull << 40);  // absurd row count
  bad.u64(2);
  Reader rb(bad.bytes());
  linalg::MatrixD out;
  EXPECT_THROW(get_matrix(rb, out), Error);
}

// -- snapshot framing -------------------------------------------------------

Snapshot sample_snapshot(Rng& rng) {
  Snapshot s;
  s.app = "cmeans";
  s.next_iteration = static_cast<std::int32_t>(rng.uniform_index(100));
  s.iterations_done = s.next_iteration;
  s.finished = rng.uniform() < 0.5;
  s.run_seed = rng.next();
  s.fault_seed = rng.next();
  s.policy_name = "adaptive";
  {
    Writer pw;
    pw.u64(1);
    pw.i32(2);
    pw.f64(rng.uniform());
    s.policy_state = pw.take();
  }
  s.stats.elapsed = rng.uniform(0.0, 100.0);
  s.stats.cpu_flops = rng.uniform(0.0, 1e12);
  s.stats.map_tasks = rng.uniform_index(1000);
  s.stats.iterations = s.iterations_done;
  {
    Writer aw;
    aw.str("app state");
    aw.f64(rng.normal());
    s.app_state = aw.take();
  }
  return s;
}

void expect_equal(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.next_iteration, b.next_iteration);
  EXPECT_EQ(a.iterations_done, b.iterations_done);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.run_seed, b.run_seed);
  EXPECT_EQ(a.fault_seed, b.fault_seed);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.policy_state, b.policy_state);
  EXPECT_EQ(a.app_state, b.app_state);
  core::visit_stats_fields2(
      a.stats, b.stats,
      [](const char* name, const auto& va, const auto& vb) {
        EXPECT_EQ(std::memcmp(&va, &vb, sizeof(va)), 0) << name;
      });
}

TEST(CkptSnapshot, RandomSnapshotsRoundTripBitExactly) {
  Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    const Snapshot s = sample_snapshot(rng);
    const std::string blob = encode_snapshot(s);
    const Snapshot back = decode_snapshot(blob);
    expect_equal(s, back);
    // Re-encoding the decoded snapshot is byte-identical: the format has
    // one canonical serialization.
    EXPECT_EQ(encode_snapshot(back), blob);
  }
}

TEST(CkptSnapshot, EveryTruncationIsRejectedWithAnError) {
  Rng rng(7);
  const std::string blob = encode_snapshot(sample_snapshot(rng));
  for (std::size_t n = 0; n < blob.size(); ++n) {
    EXPECT_THROW(decode_snapshot(blob.substr(0, n)), Error)
        << "truncated to " << n << " of " << blob.size() << " bytes";
  }
}

TEST(CkptSnapshot, EverySingleBitFlipIsRejectedWithAnError) {
  Rng rng(11);
  const std::string blob = encode_snapshot(sample_snapshot(rng));
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = blob;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      EXPECT_THROW(decode_snapshot(bad), Error)
          << "flipped bit " << bit << " of byte " << i;
    }
  }
}

TEST(CkptSnapshot, TrailingGarbageIsRejected) {
  Rng rng(13);
  std::string blob = encode_snapshot(sample_snapshot(rng));
  blob += "extra";
  EXPECT_THROW(decode_snapshot(blob), Error);
}

TEST(CkptSnapshot, UnsupportedVersionFailsLoudly) {
  Rng rng(17);
  std::string blob = encode_snapshot(sample_snapshot(rng));
  // Patch the version field (bytes 4..7, little-endian). The checksum covers
  // the payload only, so this is exactly the "written by a newer build"
  // case, not a corruption case.
  const std::uint32_t future = kSnapshotVersion + 1;
  for (int i = 0; i < 4; ++i) {
    blob[4 + i] = static_cast<char>(future >> (8 * i));
  }
  try {
    decode_snapshot(blob);
    FAIL() << "future version decoded silently";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(CkptSnapshot, NotASnapshotIsRejected) {
  EXPECT_THROW(decode_snapshot(""), Error);
  EXPECT_THROW(decode_snapshot("short"), Error);
  EXPECT_THROW(decode_snapshot(std::string(64, '\0')), Error);
  EXPECT_THROW(decode_snapshot("this is definitely not a checkpoint file"),
               Error);
}

// -- stores -----------------------------------------------------------------

/// Contract every CheckpointStore implementation must satisfy.
void check_store_contract(CheckpointStore& store) {
  EXPECT_TRUE(store.keys().empty());
  std::string out = "sentinel";
  EXPECT_FALSE(store.get("absent", &out));
  EXPECT_EQ(out, "sentinel");  // a miss must not clobber the output

  const std::string binary("\x00\xff\x7f snapshot \x01", 14);
  store.put("b-key", "blob-b");
  store.put("a-key", binary);
  store.put("b-key", "blob-b2");  // overwrite

  EXPECT_EQ(store.keys(), (std::vector<std::string>{"a-key", "b-key"}));
  ASSERT_TRUE(store.get("a-key", &out));
  EXPECT_EQ(out, binary);
  ASSERT_TRUE(store.get("b-key", &out));
  EXPECT_EQ(out, "blob-b2");

  store.remove("a-key");
  store.remove("a-key");  // removing an absent key is a no-op
  EXPECT_EQ(store.keys(), (std::vector<std::string>{"b-key"}));
  store.remove("b-key");
  EXPECT_TRUE(store.keys().empty());
}

TEST(CkptStore, MemoryBackendSatisfiesTheContract) {
  MemoryCheckpointStore store;
  check_store_contract(store);
}

TEST(CkptStore, FileBackendSatisfiesTheContract) {
  const std::string dir =
      std::filesystem::path(::testing::TempDir()) / "ckpt_contract";
  std::filesystem::remove_all(dir);
  FileCheckpointStore store(dir);
  check_store_contract(store);
  std::filesystem::remove_all(dir);
}

TEST(CkptStore, FileBackendPersistsAcrossInstances) {
  const std::string dir =
      std::filesystem::path(::testing::TempDir()) / "ckpt_persist";
  std::filesystem::remove_all(dir);
  {
    FileCheckpointStore store(dir);
    store.put("ckpt.00000004", "four");
  }
  {
    FileCheckpointStore store(dir);  // fresh instance, same directory
    std::string out;
    ASSERT_TRUE(store.get("ckpt.00000004", &out));
    EXPECT_EQ(out, "four");
  }
  std::filesystem::remove_all(dir);
}

TEST(CkptStore, FileBackendRejectsKeysThatEscapeTheDirectory) {
  const std::string dir =
      std::filesystem::path(::testing::TempDir()) / "ckpt_keys";
  std::filesystem::remove_all(dir);
  FileCheckpointStore store(dir);
  EXPECT_THROW(store.put("../evil", "x"), Error);
  EXPECT_THROW(store.put("a/b", "x"), Error);
  EXPECT_THROW(store.put("", "x"), Error);
  std::filesystem::remove_all(dir);
}

TEST(CkptStore, SnapshotKeysOrderNumericallyAndLatestWins) {
  MemoryCheckpointStore store;
  EXPECT_EQ(latest_snapshot_key(store, "ckpt"), "");
  // Insert out of order, spanning a digit-count boundary.
  for (int it : {100, 2, 9, 10, 0}) {
    store.put(snapshot_key("ckpt", it), "s" + std::to_string(it));
  }
  store.put(snapshot_key("other", 999), "unrelated prefix");
  EXPECT_EQ(latest_snapshot_key(store, "ckpt"), snapshot_key("ckpt", 100));

  prune_snapshots(store, "ckpt", 2);
  EXPECT_EQ(latest_snapshot_key(store, "ckpt"), snapshot_key("ckpt", 100));
  std::string out;
  EXPECT_TRUE(store.get(snapshot_key("ckpt", 10), &out));
  EXPECT_FALSE(store.get(snapshot_key("ckpt", 9), &out));
  EXPECT_FALSE(store.get(snapshot_key("ckpt", 0), &out));
  // Other prefixes are untouched.
  EXPECT_TRUE(store.get(snapshot_key("other", 999), &out));
}

// -- JobStats reflection ----------------------------------------------------

// If this fails, a numeric field was added to JobStats without extending
// visit_stats_fields2 (core/job.hpp): accumulate(), the snapshot codec and
// the crash-recovery accounting would all silently ignore the new field.
TEST(JobStatsReflection, VisitorCoversEveryByteOfJobStats) {
  EXPECT_EQ(sizeof(core::JobStats), 176u)
      << "JobStats changed size: update visit_stats_fields2 in core/job.hpp "
         "to cover the new field, then update this size guard";
  int fields = 0;
  core::JobStats s{};
  core::visit_stats_fields(s, [&](const char*, auto& v) {
    ++fields;
    v = static_cast<std::remove_reference_t<decltype(v)>>(1);
  });
  EXPECT_EQ(fields, 23);
}

TEST(JobStatsReflection, AccumulateSumsEveryNumericField) {
  core::JobStats a{};
  core::JobStats b{};
  // Zero `a` through the visitor: iterations and job_attempts default to 1.
  core::visit_stats_fields(a, [](const char*, auto& v) {
    v = static_cast<std::remove_reference_t<decltype(v)>>(0);
  });
  // Give every field of `b` a distinct nonzero marker via the visitor, so a
  // field skipped by accumulate() shows up as an exact mismatch.
  int idx = 0;
  core::visit_stats_fields(b, [&](const char*, auto& v) {
    v = static_cast<std::remove_reference_t<decltype(v)>>(3 + 2 * idx++);
  });

  a.accumulate(b);
  a.accumulate(b);

  idx = 0;
  core::visit_stats_fields2(
      a, b, [&](const char* name, const auto& va, const auto& vb) {
        EXPECT_EQ(va, vb + vb) << "field '" << name
                               << "' not accumulated (index " << idx << ")";
        ++idx;
      });
  EXPECT_EQ(idx, 23);
}

// -- schedule-policy state --------------------------------------------------

TEST(CkptPolicyState, StatelessPoliciesWriteNothingAndAcceptNothing) {
  core::StaticAnalyticPolicy p;
  Writer w;
  p.save_state(w);
  EXPECT_EQ(w.size(), 0u);
  Reader r(w.bytes());
  p.restore_state(r);
  EXPECT_TRUE(r.done());
}

TEST(CkptPolicyState, AdaptivePolicyLearnedFractionsRoundTripBitExactly) {
  core::AdaptiveFeedbackPolicy learned(0.5);
  core::JobFeedback fb;
  fb.elapsed = 2.0;
  for (int rank = 0; rank < 3; ++rank) {
    core::NodeFeedback nf;
    nf.rank = rank;
    nf.cpu_fraction = 0.2 + 0.1 * rank;
    nf.cpu_busy = 1.0 + 0.37 * rank;
    nf.gpu_busy = 4.0 - 0.91 * rank;
    nf.cpu_cores = 12;
    nf.gpu_cards = 1;
    fb.nodes.push_back(nf);
  }
  learned.observe(fb);
  ASSERT_GE(learned.learned_fraction(0), 0.0);

  Writer w;
  learned.save_state(w);
  ASSERT_GT(w.size(), 0u);

  core::AdaptiveFeedbackPolicy fresh(0.5);
  EXPECT_LT(fresh.learned_fraction(0), 0.0);
  Reader r(w.bytes());
  fresh.restore_state(r);
  EXPECT_TRUE(r.done());
  for (int rank = 0; rank < 3; ++rank) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fresh.learned_fraction(rank)),
              std::bit_cast<std::uint64_t>(learned.learned_fraction(rank)))
        << "rank " << rank;
  }

  // Corrupt state is rejected without clobbering what was learned.
  Writer bad;
  bad.u64(2);
  bad.i32(0);
  bad.f64(1.5);  // p out of [0,1]
  Reader rb(bad.bytes());
  EXPECT_THROW(fresh.restore_state(rb), Error);
  EXPECT_EQ(fresh.learned_fraction(0), learned.learned_fraction(0));
}

}  // namespace
}  // namespace prs::ckpt
