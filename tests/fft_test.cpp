// Tests for the FFT substrate and the batch-FFT application.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/fftbatch.hpp"
#include "common/rng.hpp"
#include "linalg/fft.hpp"

namespace prs::linalg {
namespace {

std::vector<Complex> random_signal(Rng& rng, std::size_t n) {
  std::vector<Complex> s(n);
  for (auto& x : s) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return s;
}

TEST(Fft, MatchesReferenceDft) {
  Rng rng(1);
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    auto in = random_signal(rng, n);
    auto want = dft_reference(in);
    auto got = in;
    fft(got);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i].real(), want[i].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-9) << "n=" << n;
    }
  }
}

TEST(Fft, InverseRoundTrips) {
  Rng rng(2);
  auto in = random_signal(rng, 128);
  auto data = in;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(data[i].real(), in[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), in[i].imag(), 1e-12);
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> data(16, Complex(0, 0));
  data[0] = Complex(1, 0);
  fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneConcentratesEnergy) {
  const std::size_t n = 64, k = 5;
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * M_PI * static_cast<double>(k * i) /
                         static_cast<double>(n);
    data[i] = Complex(std::cos(phase), std::sin(phase));
  }
  fft(data);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::abs(data[i]);
    if (i == k) {
      EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(3);
  auto in = random_signal(rng, 256);
  double time_energy = 0.0;
  for (const auto& x : in) time_energy += std::norm(x);
  auto freq = in;
  fft(freq);
  double freq_energy = 0.0;
  for (const auto& x : freq) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(in.size()), time_energy,
              1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft(data), InvalidArgument);
  EXPECT_THROW(fft_flops(12), InvalidArgument);
}

TEST(Fft, CostModelFormulas) {
  EXPECT_DOUBLE_EQ(fft_flops(1024), 5.0 * 1024 * 10);
  EXPECT_DOUBLE_EQ(fft_arithmetic_intensity(1024), 50.0);
  // Figure 4: FFT sits between GEMV (2) and the clustering apps (>= 30).
  EXPECT_GT(fft_arithmetic_intensity(128), 2.0);
  EXPECT_LT(fft_arithmetic_intensity(1u << 20), 500.0);
}

}  // namespace
}  // namespace prs::linalg

namespace prs::apps {
namespace {

SignalBatch make_batch(Rng& rng, std::size_t count, std::size_t size) {
  SignalBatch b;
  b.signal_size = size;
  b.samples.resize(count * size);
  for (auto& x : b.samples) {
    x = linalg::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  return b;
}

TEST(FftBatch, SerialTransformsEverySignal) {
  Rng rng(4);
  auto in = make_batch(rng, 5, 32);
  auto out = fft_batch_serial(in);
  ASSERT_EQ(out.count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<linalg::Complex> want(in.signal(i), in.signal(i) + 32);
    linalg::fft(want);
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_NEAR(out.signal(i)[j].real(), want[j].real(), 1e-12);
      EXPECT_NEAR(out.signal(i)[j].imag(), want[j].imag(), 1e-12);
    }
  }
}

TEST(FftBatch, PrsMatchesSerial) {
  Rng rng(5);
  auto in = make_batch(rng, 64, 64);
  auto want = fft_batch_serial(in);
  for (int nodes : {1, 3}) {
    sim::Simulator sim;
    core::Cluster cluster(sim, nodes, core::NodeConfig{});
    auto got = fft_batch_prs(cluster, in, core::JobConfig{});
    ASSERT_EQ(got.samples.size(), want.samples.size()) << nodes;
    for (std::size_t i = 0; i < want.samples.size(); ++i) {
      EXPECT_NEAR(std::abs(got.samples[i] - want.samples[i]), 0.0, 1e-12);
    }
  }
}

TEST(FftBatch, ModerateAiSplitsWorkAcrossBothBackends) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, core::NodeConfig{});
  core::JobConfig cfg;
  cfg.charge_job_startup = false;
  auto stats = fft_batch_prs_modeled(cluster, 200000, 1024, cfg);
  const double cpu_share = stats.cpu_flops / stats.total_flops();
  // AI = 50: staged GPU is PCI-E-bound, so the CPU keeps a large share —
  // but clearly less than GEMV's 97%.
  EXPECT_GT(cpu_share, 0.3);
  EXPECT_LT(cpu_share, 0.97);
}

}  // namespace
}  // namespace prs::apps
