// Tests for the observability subsystem (obs/): metrics registry semantics,
// trace recording and track registration, ScopedSpan nesting, zero-event
// behaviour when disabled, Chrome trace-event export structure, and the
// determinism guarantee (two identical runs -> byte-identical exports).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace prs::obs {
namespace {

// -- metrics ------------------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  reg.counter("a").add(2.5);
  reg.counter("a").increment();
  EXPECT_DOUBLE_EQ(reg.counter("a").value(), 3.5);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(Metrics, HistogramBucketsAndStats) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive bound)
  h.observe(50.0);   // bucket 2
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1051.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 0u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Metrics, HistogramBoundsFixedOnFirstUse) {
  MetricsRegistry reg;
  reg.histogram("lat", {1.0, 2.0}).observe(1.5);
  // Later callers get the existing histogram; new bounds are ignored.
  Histogram& h = reg.histogram("lat", {99.0});
  EXPECT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Metrics, GeometricBuckets) {
  auto b = geometric_buckets(2.0, 4.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 2.0);
  EXPECT_DOUBLE_EQ(b[1], 8.0);
  EXPECT_DOUBLE_EQ(b[2], 32.0);
}

TEST(Metrics, ClearEmptiesRegistry) {
  MetricsRegistry reg;
  reg.counter("x").increment();
  reg.histogram("y", {1.0}).observe(0.5);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

// -- trace recording ----------------------------------------------------------

TEST(TraceRecorder, TracksDedupAndAssignDeterministicIds) {
  sim::Simulator simu;
  TraceRecorder rec(simu);
  TrackId a = rec.track("node0", "runner");
  TrackId b = rec.track("node0", "nic");
  TrackId c = rec.track("node1", "runner");
  EXPECT_EQ(rec.track("node0", "runner"), a);  // dedup
  ASSERT_EQ(rec.tracks().size(), 3u);
  // pids follow process first-seen order, tids thread order within a pid.
  EXPECT_EQ(rec.tracks()[a].pid, rec.tracks()[b].pid);
  EXPECT_NE(rec.tracks()[a].pid, rec.tracks()[c].pid);
  EXPECT_EQ(rec.tracks()[a].tid, 0u);
  EXPECT_EQ(rec.tracks()[b].tid, 1u);
  EXPECT_EQ(rec.tracks()[c].tid, 0u);
}

TEST(TraceRecorder, DisabledRecorderAddsNoEvents) {
  sim::Simulator simu;
  TraceRecorder rec(simu);
  rec.set_enabled(false);
  TrackId t = rec.track("node0", "runner");
  rec.complete(t, "span", "cat", 0.0, 1.0);
  rec.instant(t, "marker", "cat");
  rec.counter(t, "c", 1.0);
  {
    ScopedSpan s(&rec, t, "scoped", "cat");
    EXPECT_FALSE(s.active());
  }
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, NullRecorderScopedSpanIsSafe) {
  ScopedSpan s(nullptr, 0, "x", "y");
  EXPECT_FALSE(s.active());
  s.add_arg(arg("k", 1.0));
  s.close();  // no-op, must not crash
}

TEST(TraceRecorder, ScopedSpansNestAndCloseCorrectly) {
  sim::Simulator simu;
  TraceRecorder rec(simu);
  TrackId t = rec.track("node0", "runner");
  {
    ScopedSpan outer(&rec, t, "outer", "phase");
    simu.schedule_after(1.0, [] {});
    simu.run();  // clock -> 1.0
    {
      ScopedSpan inner(&rec, t, "inner", "phase");
      inner.add_arg(arg("k", std::uint64_t{7}));
      simu.schedule_after(1.0, [] {});
      simu.run();  // clock -> 2.0
    }
    simu.schedule_after(1.0, [] {});
    simu.run();  // clock -> 3.0
  }
  // Inner closes first, so it is recorded first; both are complete events
  // and the inner interval nests inside the outer one.
  ASSERT_EQ(rec.events().size(), 2u);
  const TraceEvent& inner = rec.events()[0];
  const TraceEvent& outer = rec.events()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(outer.phase, TraceEvent::Phase::kComplete);
  EXPECT_DOUBLE_EQ(outer.ts, 0.0);
  EXPECT_DOUBLE_EQ(outer.dur, 3.0);
  EXPECT_DOUBLE_EQ(inner.ts, 1.0);
  EXPECT_DOUBLE_EQ(inner.dur, 1.0);
  EXPECT_GE(inner.ts, outer.ts);
  EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].key, "k");
  EXPECT_EQ(inner.args[0].value, "7");
}

TEST(TraceRecorder, ExplicitCloseMakesDestructorANoop) {
  sim::Simulator simu;
  TraceRecorder rec(simu);
  TrackId t = rec.track("node0", "runner");
  {
    ScopedSpan s(&rec, t, "once", "cat");
    s.close();
    EXPECT_FALSE(s.active());
  }
  EXPECT_EQ(rec.events().size(), 1u);
}

// -- toy job for end-to-end traces --------------------------------------------

core::MapReduceSpec<int, long> toy_spec() {
  core::MapReduceSpec<int, long> spec;
  spec.name = "toy";
  spec.cpu_map = [](const core::InputSlice& s, core::Emitter<int, long>& e) {
    long counts[4] = {};
    for (std::size_t i = s.begin; i < s.end; ++i) counts[i % 4]++;
    for (int k = 0; k < 4; ++k) {
      if (counts[k] > 0) e.emit(k, counts[k]);
    }
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };
  spec.cpu_flops_per_item = 100.0;
  spec.gpu_flops_per_item = 100.0;
  spec.ai_cpu = 50.0;
  spec.ai_gpu = 50.0;
  spec.item_bytes = 8.0;
  spec.pair_bytes = 16.0;
  return spec;
}

/// Runs the toy job on a fresh 2-node cluster with a recorder attached and
/// returns (chrome trace, metrics csv).
std::pair<std::string, std::string> traced_run() {
  sim::Simulator simu;
  TraceRecorder rec(simu);
  simu.set_tracer(&rec);
  core::Cluster cluster(simu, 2, core::NodeConfig{});
  auto spec = toy_spec();
  auto res = core::run_job(cluster, spec, core::JobConfig{}, 5000);
  EXPECT_EQ(res.output.at(0), 1250);
  std::ostringstream metrics;
  write_metrics_csv(rec.metrics(), metrics);
  return {chrome_trace_string(rec), metrics.str()};
}

TEST(ChromeExport, TraceIsStructurallyValidJson) {
  auto [json, metrics] = traced_run();
  // Envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  const std::size_t last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
  // Balanced braces/brackets => no truncated event objects.
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

std::size_t count_occurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(pat); pos != std::string::npos;
       pos = hay.find(pat, pos + pat.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeExport, SpansAreCompleteEventsWithDurations) {
  auto [json, metrics] = traced_run();
  // This exporter only emits self-contained "X" spans, so every span is a
  // matched begin/end by construction — no dangling "B" without an "E".
  const std::size_t x = count_occurrences(json, "\"ph\":\"X\"");
  EXPECT_GT(x, 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), x);
  // The instrumented layers all show up.
  EXPECT_NE(json.find("\"name\":\"map\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sched.decision\""), std::string::npos);
  EXPECT_NE(json.find("cpu.core0"), std::string::npos);
  EXPECT_NE(json.find("gpu0.s"), std::string::npos);
  EXPECT_NE(json.find("\"nic\""), std::string::npos);
  // Both nodes registered as processes.
  EXPECT_NE(json.find("\"node0\""), std::string::npos);
  EXPECT_NE(json.find("\"node1\""), std::string::npos);
}

TEST(ChromeExport, IdenticalRunsExportByteIdenticalFiles) {
  auto [json1, metrics1] = traced_run();
  auto [json2, metrics2] = traced_run();
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(metrics1, metrics2);
  EXPECT_FALSE(metrics1.empty());
}

TEST(ChromeExport, DetachedTracerRecordsNothingDuringJob) {
  sim::Simulator simu;
  TraceRecorder rec(simu);  // never attached via set_tracer
  core::Cluster cluster(simu, 1, core::NodeConfig{});
  auto spec = toy_spec();
  (void)core::run_job(cluster, spec, core::JobConfig{}, 1000);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_TRUE(rec.metrics().empty());
}

TEST(MetricsExport, CsvAndJsonShapes) {
  MetricsRegistry reg;
  reg.counter("net.bytes").add(1024.0);
  reg.histogram("lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream csv;
  write_metrics_csv(reg, csv);
  EXPECT_EQ(csv.str().rfind("kind,name,count,sum,min,max,mean", 0), 0u);
  EXPECT_NE(csv.str().find("counter,net.bytes"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram,lat"), std::string::npos);
  EXPECT_NE(csv.str().find("lat[le="), std::string::npos);
  std::ostringstream js;
  write_metrics_json(reg, js);
  EXPECT_EQ(js.str().front(), '{');
  EXPECT_NE(js.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(js.str().find("\"net.bytes\""), std::string::npos);
  EXPECT_NE(js.str().find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace prs::obs
