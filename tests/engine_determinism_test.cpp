// Engine determinism sweep (the task-graph acceptance property): for every
// built-in application, the task-graph engine produces byte-identical
// result digests to the legacy stage runner — at pipeline depth 1 (where
// the schedule itself is the legacy timeline) AND at depths 2/4 (where
// per-block D2H overlap and pipelined iteration windows change the
// *timing* but may not change a single result byte) — across host-pool
// thread counts.
//
// Digests come from svc::run_job_spec, the same canonical FNV-1a result
// digest prs_run and the job server print, so any regression caught here
// is exactly a user-visible result change.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "exec/thread_pool.hpp"
#include "svc/job_spec.hpp"
#include "svc/launcher.hpp"

namespace prs {
namespace {

/// Small-but-representative spec for each app: functional where the app
/// supports it (real data, real kernels), modeled for the FFT batch.
svc::JobSpec app_spec(const std::string& app) {
  svc::JobSpec spec;
  spec.app = app;
  spec.nodes = 3;
  spec.functional = true;
  spec.points = 400;
  spec.dims = 6;
  spec.clusters = 3;
  spec.iterations = 4;
  spec.rows = 96;
  spec.cols = 64;
  if (app == "dgemm") {
    spec.rows = 48;
    spec.cols = 40;
    spec.dims = 24;
  } else if (app == "stencil") {
    spec.dims = 40;  // grid rows
    spec.cols = 32;
    spec.iterations = 6;
  } else if (app == "fft") {
    spec.functional = false;  // modeled-only app
    spec.points = 64;
  } else if (app == "wordcount") {
    spec.points = 300;  // corpus lines
  }
  return spec;
}

std::string run_digest(const std::string& app, const std::string& engine,
                       int depth, int threads) {
  exec::ThreadPool::instance().configure(threads);
  svc::JobSpec spec = app_spec(app);
  spec.engine = engine;
  spec.pipeline_depth = depth;
  spec.validate();
  sim::Simulator simu;
  const core::NodeConfig node = spec.node_config();
  core::Cluster cluster(simu, spec.nodes, node);
  core::JobConfig cfg = spec.job_config();
  auto policy = core::make_policy(spec.policy);
  cfg.policy = policy.get();
  Rng rng(spec.seed);
  const svc::LaunchOutcome out =
      svc::run_job_spec(spec, cluster, node, cfg, rng, nullptr);
  EXPECT_FALSE(out.digest.empty()) << app << " produced no digest";
  return out.digest;
}

class EngineDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineDeterminism, GraphMatchesStagesAcrossDepthsAndThreads) {
  const std::string app = GetParam();
  // FFT is the one modeled-only app: its digest hashes the JobStats —
  // virtual *timing* — which deeper pipelines legitimately improve. Every
  // functional app hashes result data, which may never change.
  const bool digest_is_timing = app_spec(app).functional == false;
  const std::string reference = run_digest(app, "stages", 1, 1);
  for (const int depth : {1, 2, 4}) {
    const std::string at_one_thread = run_digest(app, "graph", depth, 1);
    if (depth == 1 || !digest_is_timing) {
      // Depth 1 is the faithful schedule (timing included); functional
      // results are depth-invariant at any depth.
      EXPECT_EQ(at_one_thread, reference)
          << app << " diverged at depth=" << depth;
    }
    // Host-pool size may never leak into a digest, timing or results.
    EXPECT_EQ(run_digest(app, "graph", depth, 3), at_one_thread)
        << app << " depth=" << depth << " digest depends on thread count";
  }
  // The legacy engine itself is thread-count invariant too.
  EXPECT_EQ(run_digest(app, "stages", 1, 3), reference)
      << app << " legacy engine diverged at threads=3";
}

INSTANTIATE_TEST_SUITE_P(AllApps, EngineDeterminism,
                         ::testing::Values("cmeans", "kmeans", "gmm", "gemv",
                                           "dgemm", "fft", "wordcount",
                                           "stencil"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace prs
