// Reproduction tests: the paper's headline numbers asserted as test cases,
// so a regression in the device models, scheduler, or calibration breaks
// the build. Each test names the paper claim it pins down.
#include <gtest/gtest.h>

#include "apps/cmeans.hpp"
#include "common/stats.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "baselines/cmeans_baselines.hpp"
#include "core/calibration.hpp"
#include "core/cluster.hpp"

namespace prs {
namespace {

using core::Cluster;
using core::JobConfig;
using core::JobStats;
using core::NodeConfig;

JobConfig steady(bool use_cpu, bool use_gpu) {
  JobConfig cfg;
  cfg.use_cpu = use_cpu;
  cfg.use_gpu = use_gpu;
  cfg.charge_job_startup = false;
  return cfg;
}

JobStats cmeans_fig6(int nodes, bool with_cpu) {
  sim::Simulator sim;
  Cluster cluster(sim, nodes, NodeConfig{});
  apps::CmeansParams p;
  p.clusters = 10;
  p.max_iterations = 10;
  return apps::cmeans_prs_modeled(
      cluster, 1000000ull * static_cast<std::size_t>(nodes), 100, p,
      steady(with_cpu, true));
}

JobStats gmm_fig6(int nodes, bool with_cpu) {
  sim::Simulator sim;
  Cluster cluster(sim, nodes, NodeConfig{});
  apps::GmmParams p;
  p.components = 100;
  p.max_iterations = 10;
  return apps::gmm_prs_modeled(
      cluster, 100000ull * static_cast<std::size_t>(nodes), 60, p,
      steady(with_cpu, true));
}

JobStats gemv_fig6(int nodes, bool with_cpu) {
  sim::Simulator sim;
  Cluster cluster(sim, nodes, NodeConfig{});
  return apps::gemv_prs_modeled(cluster,
                                35000ull * static_cast<std::size_t>(nodes),
                                10000, steady(with_cpu, true));
}

// -- paper summary: "using all CPU cores increase the GPU performance by
//    1011.8%, 11.56%, and 15.4% respectively" --------------------------------

TEST(PaperSummary, GemvCoProcessingGainIsAboutTenX) {
  const double gpu = gemv_fig6(1, false).elapsed;
  const double both = gemv_fig6(1, true).elapsed;
  const double gain = gpu / both - 1.0;  // paper: +1011.8%
  EXPECT_GT(gain, 7.0);
  EXPECT_LT(gain, 13.0);
}

TEST(PaperSummary, CmeansCoProcessingGainIsAboutElevenPercent) {
  const double gpu = cmeans_fig6(1, false).elapsed;
  const double both = cmeans_fig6(1, true).elapsed;
  const double gain = gpu / both - 1.0;  // paper: +11.56%
  EXPECT_GT(gain, 0.07);
  EXPECT_LT(gain, 0.16);
}

TEST(PaperSummary, GmmCoProcessingGainIsAboutFifteenPercent) {
  const double gpu = gmm_fig6(1, false).elapsed;
  const double both = gmm_fig6(1, true).elapsed;
  const double gain = gpu / both - 1.0;  // paper: +15.4%
  EXPECT_GT(gain, 0.07);
  EXPECT_LT(gain, 0.20);
}

// -- Figure 6 weak-scaling shape -----------------------------------------------

TEST(Figure6, WeakScalingIsFlatForAllThreeApps) {
  // Gflops/node at 8 nodes stays within a few % of the 1-node value.
  struct App {
    const char* name;
    JobStats (*run)(int, bool);
    double max_drop;
  } apps_list[] = {
      {"gemv", gemv_fig6, 0.05},
      {"cmeans", cmeans_fig6, 0.08},  // paper: ~5.5% reduction overhead
      {"gmm", gmm_fig6, 0.08},
  };
  for (const auto& a : apps_list) {
    const auto s1 = a.run(1, false);
    const auto s8 = a.run(8, false);
    const double r1 = s1.total_flops() / s1.elapsed / 1.0;
    const double r8 = s8.total_flops() / s8.elapsed / 8.0;
    EXPECT_GT(r8, r1 * (1.0 - a.max_drop)) << a.name;
    EXPECT_LT(r8, r1 * 1.01) << a.name;  // no superlinear artifacts
  }
}

TEST(Figure6, CmeansLosesAFewPercentAtEightNodesToReduction) {
  const auto s1 = cmeans_fig6(1, false);
  const auto s8 = cmeans_fig6(8, false);
  const double r1 = s1.total_flops() / s1.elapsed;
  const double r8 = s8.total_flops() / s8.elapsed / 8.0;
  const double drop = 1.0 - r8 / r1;  // paper: 5.5% at 8 nodes
  EXPECT_GT(drop, 0.002);
  EXPECT_LT(drop, 0.09);
}

TEST(Figure6, GmmPeakExceedsCmeansPeak) {
  const auto sc = cmeans_fig6(1, true);
  const auto sg = gmm_fig6(1, true);
  EXPECT_GT(sg.total_flops() / sg.elapsed, sc.total_flops() / sc.elapsed);
}

// -- Table 5: analytic p and profiled p ------------------------------------------

TEST(Table5, ProfiledSplitsWithinTenPointsOfAnalytic) {
  // The paper's conclusion: "The error between the real optimal work load
  // distribution proportion and theoretical one is less than 10%."
  const roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                          simdev::delta_c2070());
  // GEMV: profiled from single-backend runs (GPU rate includes staging).
  {
    const auto cpu = gemv_fig6(1, /*with_cpu=*/true);  // p~0.97: ~CPU rate
    sim::Simulator sim;
    Cluster cluster(sim, 1, NodeConfig{});
    JobConfig cfg = steady(false, true);
    const auto gpu = apps::gemv_prs_modeled(cluster, 35000, 10000, cfg);
    const double fc = cpu.cpu_flops / (cpu.cpu_busy / 12.0);
    const double fg = gpu.gpu_flops / (gpu.gpu_busy + gpu.pcie_bytes / 1.1e9);
    const double profiled = fc / (fc + fg);
    const double analytic =
        sched.workload_split(2.0, true).cpu_fraction;
    EXPECT_LT(std::abs(profiled - analytic), 0.10);
    EXPECT_NEAR(profiled, 0.908, 0.03);  // paper's profiled value
  }
  // C-means: cached iterative app, device-level rates.
  {
    sim::Simulator s1, s2;
    Cluster c1(s1, 1, NodeConfig{});
    Cluster c2(s2, 1, NodeConfig{});
    apps::CmeansParams p;
    p.clusters = 100;
    p.max_iterations = 5;
    const auto cpu =
        apps::cmeans_prs_modeled(c1, 200000, 100, p, steady(true, false));
    const auto gpu =
        apps::cmeans_prs_modeled(c2, 200000, 100, p, steady(false, true));
    const double fc = cpu.cpu_flops / (cpu.cpu_busy / 12.0);
    const double fg = gpu.gpu_flops / gpu.gpu_busy;
    const double profiled = fc / (fc + fg);
    const double analytic = sched.workload_split(500.0, false).cpu_fraction;
    EXPECT_LT(std::abs(profiled - analytic), 0.10);
    EXPECT_NEAR(profiled, 0.119, 0.02);  // paper's profiled value
  }
}

// -- Table 3 ordering and gaps ----------------------------------------------------

TEST(Table3, RuntimeOrderingHoldsAtEverySize) {
  for (std::size_t points : {200000ull, 400000ull, 800000ull}) {
    baselines::CmeansWorkload w;
    w.total_points = points;
    w.iterations = core::calib::kTable3Iterations;  // the paper's regime:
    // with few iterations PRS's one-time startup would dominate and the
    // PRS-vs-MPI/CPU ordering is an asymptotic property
    const double mpi_gpu = baselines::cmeans_mpi_gpu(w, NodeConfig{});
    const double mpi_cpu = baselines::cmeans_mpi_cpu(w, NodeConfig{});
    const double mahout = baselines::cmeans_mahout(w);

    sim::Simulator sim;
    Cluster cluster(sim, 4, NodeConfig{});
    apps::CmeansParams p;
    p.clusters = 10;
    p.max_iterations = core::calib::kTable3Iterations;
    JobConfig cfg;
    cfg.use_cpu = false;
    const double prs_gpu =
        apps::cmeans_prs_modeled(cluster, points, 100, p, cfg).elapsed;

    EXPECT_LT(mpi_gpu, prs_gpu) << points;
    EXPECT_LT(prs_gpu, mpi_cpu) << points;
    EXPECT_LT(mpi_cpu, mahout) << points;
    // "two orders of magnitude faster than the Mahout solution"
    EXPECT_GT(mahout / prs_gpu, 25.0) << points;
  }
}

TEST(Table3, MpiGpuColumnMatchesPaperWithinTwentyPercent) {
  const double paper[] = {0.53, 0.945, 1.78};
  const std::size_t sizes[] = {200000, 400000, 800000};
  for (int i = 0; i < 3; ++i) {
    baselines::CmeansWorkload w;
    w.total_points = sizes[i];
    const double t = baselines::cmeans_mpi_gpu(w, NodeConfig{});
    EXPECT_LT(relative_error(t, paper[i]), 0.20) << sizes[i];
  }
}

TEST(Table3, MpiCpuColumnMatchesPaperWithinTenPercent) {
  const double paper[] = {6.41, 12.58, 24.89};
  const std::size_t sizes[] = {200000, 400000, 800000};
  for (int i = 0; i < 3; ++i) {
    baselines::CmeansWorkload w;
    w.total_points = sizes[i];
    const double t = baselines::cmeans_mpi_cpu(w, NodeConfig{});
    EXPECT_LT(relative_error(t, paper[i]), 0.10) << sizes[i];
  }
}

TEST(Table3, MahoutIsLaunchDominatedAndWeaklySizeDependent) {
  baselines::CmeansWorkload small, big;
  small.total_points = 200000;
  big.total_points = 800000;
  const double t_small = baselines::cmeans_mahout(small);
  const double t_big = baselines::cmeans_mahout(big);
  EXPECT_GT(t_big, t_small);
  EXPECT_LT(t_big / t_small, 1.5);  // paper: 541 -> 687 s (1.27x for 4x data)
}

// -- Table 5 predicted values (calibration pinned) ---------------------------------

TEST(Calibration, DeltaNodeReproducesPaperPValues) {
  const roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                          simdev::delta_c2070());
  EXPECT_NEAR(sched.workload_split(2.0, true).cpu_fraction, 0.973, 0.005);
  EXPECT_NEAR(sched.workload_split(500.0, false).cpu_fraction, 0.112,
              0.005);
  EXPECT_NEAR(sched.workload_split(6600.0, false).cpu_fraction, 0.112,
              0.005);
}

TEST(Calibration, EfficiencyFactorsAreDocumentedConstants) {
  EXPECT_DOUBLE_EQ(core::calib::kGemv.cpu_compute, 0.28);
  EXPECT_DOUBLE_EQ(core::calib::kCmeans.gpu_compute, 0.35);
  EXPECT_DOUBLE_EQ(core::calib::kGmm.gpu_compute, 0.50);
  EXPECT_EQ(core::calib::kTable3Iterations, 300);
}

}  // namespace
}  // namespace prs
