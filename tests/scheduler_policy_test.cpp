// Tests for the layered scheduler: the level-1 Partitioner, the level-2
// SchedulePolicy hierarchy, and the refactored pipeline's equivalence with
// the pre-refactor runner.
//
// The "PreRefactor" golden values were captured from the monolithic
// job_runner.hpp (before the stage/policy split) on the Table-3 C-means
// configuration; static scheduling must reproduce them exactly — the
// refactor moves code, it must not move virtual time.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cmeans.hpp"
#include "core/cluster.hpp"
#include "core/partitioner.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_policy.hpp"

namespace {

using namespace prs;

// -- Partitioner (level-1 master task scheduler) ------------------------------

TEST(Partitioner, HomogeneousNodesSplitEqually) {
  const auto shares = core::Partitioner::node_shares(1000, {1.0, 1.0, 1.0, 1.0});
  ASSERT_EQ(shares.size(), 4u);
  std::size_t cursor = 0;
  for (const auto& s : shares) {
    EXPECT_EQ(s.begin, cursor);
    EXPECT_EQ(s.size(), 250u);
    cursor = s.end;
  }
  EXPECT_EQ(cursor, 1000u);
}

TEST(Partitioner, InhomogeneousNodesSplitByCapability) {
  // A node three times as capable gets three times the items (§III.B.3.a).
  const auto shares = core::Partitioner::node_shares(1200, {3.0, 1.0});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].size(), 900u);
  EXPECT_EQ(shares[1].size(), 300u);
}

TEST(Partitioner, RoundingRemainderGoesToLastNode) {
  const auto shares = core::Partitioner::node_shares(10, {1.0, 1.0, 1.0});
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0].size(), 3u);
  EXPECT_EQ(shares[1].size(), 3u);
  EXPECT_EQ(shares[2].size(), 4u);  // 10 - 3 - 3
  EXPECT_EQ(shares[2].end, 10u);
}

TEST(Partitioner, ZeroCapabilityNodeGetsNothing) {
  const auto parts = core::Partitioner::partition(100, {1.0, 0.0}, 2);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size(), 2u);  // two partitions per node
  EXPECT_TRUE(parts[1].empty());   // no empty partitions for idle nodes
}

TEST(Partitioner, AllZeroCapabilityThrows) {
  EXPECT_THROW(core::Partitioner::node_shares(100, {0.0, 0.0}), Error);
}

TEST(Partitioner, PartitionChopsEachShare) {
  const auto parts = core::Partitioner::partition(1000, {1.0, 1.0}, 2);
  ASSERT_EQ(parts.size(), 2u);
  for (const auto& node_parts : parts) {
    ASSERT_EQ(node_parts.size(), 2u);
    EXPECT_EQ(node_parts[0].size() + node_parts[1].size(), 500u);
  }
}

// -- SchedulePolicy decisions -------------------------------------------------

core::JobShape cmeans_shape(int clusters) {
  core::JobShape shape;
  shape.ai_cpu = shape.ai_gpu = apps::cmeans_arithmetic_intensity(clusters);
  shape.gpu_data_cached = true;
  shape.item_bytes = 800.0;  // 100 doubles per point
  const double ai = shape.ai_cpu;
  shape.ai_of_block = [ai](double) { return ai; };
  return shape;
}

TEST(SchedulePolicy, StaticPolicyMatchesAnalyticModel) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, core::NodeConfig{});
  core::StaticAnalyticPolicy policy;
  core::JobConfig cfg;
  const auto shape = cmeans_shape(10);

  const auto d = policy.node_decision(cluster, shape, cfg, 0);
  const auto split = cluster.scheduler(0).workload_split(
      shape.ai_cpu, shape.ai_gpu, !shape.gpu_data_cached, 1);
  EXPECT_DOUBLE_EQ(d.cpu_fraction, split.cpu_fraction);
  EXPECT_DOUBLE_EQ(d.capability, split.cpu_rate + split.gpu_rate);
}

TEST(SchedulePolicy, SingleBackendAndOverrideWinOverModel) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, core::NodeConfig{});
  core::StaticAnalyticPolicy policy;
  const auto shape = cmeans_shape(10);

  core::JobConfig cpu_only;
  cpu_only.use_gpu = false;
  EXPECT_DOUBLE_EQ(policy.node_decision(cluster, shape, cpu_only, 0)
                       .cpu_fraction, 1.0);

  core::JobConfig gpu_only;
  gpu_only.use_cpu = false;
  EXPECT_DOUBLE_EQ(policy.node_decision(cluster, shape, gpu_only, 0)
                       .cpu_fraction, 0.0);

  core::JobConfig forced;
  forced.cpu_fraction_override = 0.42;
  EXPECT_DOUBLE_EQ(policy.node_decision(cluster, shape, forced, 0)
                       .cpu_fraction, 0.42);
}

TEST(SchedulePolicy, MakePolicyFactory) {
  EXPECT_EQ(core::make_policy("static")->name(), "static");
  EXPECT_EQ(core::make_policy("dynamic")->name(), "dynamic");
  EXPECT_EQ(core::make_policy("adaptive")->name(), "adaptive");
  EXPECT_EQ(core::make_policy(core::SchedulingMode::kStatic)->name(),
            "static");
  EXPECT_EQ(core::make_policy(core::SchedulingMode::kDynamic)->name(),
            "dynamic");
  EXPECT_THROW(core::make_policy("greedy"), InvalidArgument);
}

TEST(SchedulePolicy, DynamicBlockItemsFlooredAtMinBs) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, core::NodeConfig{});
  core::DynamicBlockPolicy dynamic;
  core::StaticAnalyticPolicy base;
  core::JobConfig cfg;

  // Synthetic size-dependent kernel: AI grows linearly with block bytes, so
  // MinBs = ridge * 1024 (Eq (11) has a closed form here).
  core::JobShape shape;
  shape.item_bytes = 8.0;
  shape.ai_of_block = [](double bytes) { return bytes / 1024.0; };
  const double ridge =
      cluster.scheduler(0).gpu_roofline().ridge_point_staged();
  const auto floor_items = static_cast<std::size_t>(
      std::ceil(ridge * 1024.0 / shape.item_bytes));

  // Partition small enough that the load-balance heuristic would make
  // blocks far below MinBs.
  const std::size_t partition = 4 * floor_items;
  const std::size_t balance =
      base.block_items(cluster, shape, cfg, 0, partition);
  ASSERT_LT(balance, floor_items);

  const std::size_t floored =
      dynamic.block_items(cluster, shape, cfg, 0, partition);
  EXPECT_GE(floored, floor_items);
  EXPECT_LE(floored, partition);

  // An explicit --dynamic-block-items size always wins.
  core::JobConfig manual = cfg;
  manual.dynamic_block_items = 7;
  EXPECT_EQ(dynamic.block_items(cluster, shape, manual, 0, partition), 7u);

  // Constant-AI apps below the ridge have no MinBs: the legacy heuristic
  // partition / (4 * (cores + 1)) applies unchanged.
  const auto legacy_shape = cmeans_shape(10);
  EXPECT_EQ(dynamic.block_items(cluster, legacy_shape, cfg, 0, 26000),
            base.block_items(cluster, legacy_shape, cfg, 0, 26000));
}

// -- pre-refactor equivalence (Table-3 C-means configuration) -----------------

core::JobStats table3_cmeans(core::JobConfig cfg, int gpus) {
  sim::Simulator sim;
  core::NodeConfig node;
  node.gpus_per_node = gpus;
  core::Cluster cluster(sim, 4, node);
  apps::CmeansParams p;
  p.clusters = 10;
  p.max_iterations = 10;
  return apps::cmeans_prs_modeled(cluster, 200000, 100, p, cfg);
}

TEST(PreRefactor, StaticPhaseTimesAreByteIdentical) {
  core::JobConfig cfg;
  cfg.scheduling = core::SchedulingMode::kStatic;
  const auto s = table3_cmeans(cfg, 1);
  // Golden values captured from the pre-refactor monolithic runner.
  EXPECT_DOUBLE_EQ(s.elapsed, 1.2261198423554851);
  EXPECT_DOUBLE_EQ(s.startup_time, 1.2);
  EXPECT_DOUBLE_EQ(s.map_time, 0.023253324927501318);
  EXPECT_DOUBLE_EQ(s.shuffle_time, 0.00060608000000295092);
  EXPECT_DOUBLE_EQ(s.reduce_time, 0.00038997614196345509);
  EXPECT_DOUBLE_EQ(s.gather_time, 0.00055862128601535943);
  EXPECT_EQ(s.map_tasks, 3920u);
  EXPECT_EQ(s.reduce_tasks, 80u);
  EXPECT_DOUBLE_EQ(s.cpu_flops, 1120804572.4137931);
  EXPECT_DOUBLE_EQ(s.gpu_flops, 8879236227.5862083);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 17912455.172413781);
  EXPECT_DOUBLE_EQ(s.network_bytes, 37740.0);
}

TEST(PreRefactor, DynamicStaysDeterministicAndComparable) {
  core::JobConfig cfg;
  cfg.scheduling = core::SchedulingMode::kDynamic;
  const auto a = table3_cmeans(cfg, 1);
  const auto b = table3_cmeans(cfg, 1);
  // Determinism: two runs are byte-identical.
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.map_time, b.map_time);
  EXPECT_EQ(a.map_tasks, b.map_tasks);
  EXPECT_DOUBLE_EQ(a.cpu_flops, b.cpu_flops);

  // The per-pull dispatch accounting moves a little work between devices
  // versus the pre-refactor runner (blocks now trickle out of the
  // dispatcher), but the totals stay in the pre-refactor envelope:
  // elapsed within 1% of the old 1.2352349819108674 s, same task count.
  EXPECT_NEAR(a.elapsed, 1.2352349819108674, 0.013);
  EXPECT_EQ(a.map_tasks, 4240u);
  const auto st = table3_cmeans(core::JobConfig{}, 1);
  EXPECT_DOUBLE_EQ(a.network_bytes, st.network_bytes);
  EXPECT_NEAR(a.cpu_flops + a.gpu_flops, st.cpu_flops + st.gpu_flops, 1.0);
}

TEST(PreRefactor, ExplicitPolicyObjectMatchesLegacyConfigPath) {
  for (const auto mode :
       {core::SchedulingMode::kStatic, core::SchedulingMode::kDynamic}) {
    core::JobConfig legacy;
    legacy.scheduling = mode;
    const auto a = table3_cmeans(legacy, 1);

    core::JobConfig with_policy = legacy;
    auto policy = core::make_policy(mode);
    with_policy.policy = policy.get();
    const auto b = table3_cmeans(with_policy, 1);

    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    EXPECT_DOUBLE_EQ(a.map_time, b.map_time);
    EXPECT_DOUBLE_EQ(a.reduce_time, b.reduce_time);
    EXPECT_EQ(a.map_tasks, b.map_tasks);
    EXPECT_EQ(a.reduce_tasks, b.reduce_tasks);
    EXPECT_DOUBLE_EQ(a.cpu_flops, b.cpu_flops);
    EXPECT_DOUBLE_EQ(a.gpu_flops, b.gpu_flops);
  }
}

// -- multi-GPU reduce spread --------------------------------------------------

TEST(ReduceStage, SpreadsAcrossAllCards) {
  // GPU-only reduce on one node: one reduce task per card, and two cards
  // finish faster than one (each card has its own PCI-E link and compute).
  auto reduce_run = [](int gpus) {
    sim::Simulator sim;
    core::NodeConfig node;
    node.gpus_per_node = gpus;
    core::Cluster cluster(sim, 1, node);
    apps::CmeansParams p;
    p.clusters = 10;
    p.max_iterations = 1;
    core::JobConfig cfg;
    cfg.cpu_fraction_override = 0.0;  // all reduce work on the cards
    cfg.charge_job_startup = false;
    return apps::cmeans_prs_modeled(cluster, 100000, 100, p, cfg);
  };
  const auto one = reduce_run(1);
  const auto two = reduce_run(2);
  EXPECT_EQ(one.reduce_tasks, 1u);
  EXPECT_EQ(two.reduce_tasks, 2u);
  EXPECT_LT(two.reduce_time, one.reduce_time);
}

// -- adaptive feedback policy -------------------------------------------------

TEST(AdaptivePolicy, ConvergesTowardAnalyticFraction) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 2, core::NodeConfig{});
  const double p_star =
      cluster.scheduler(0)
          .workload_split(apps::cmeans_arithmetic_intensity(10), false)
          .cpu_fraction;

  // Start from a deliberately wrong 50/50 split; ten iterations of busy-time
  // feedback must pull p close to the Eq (8) optimum.
  core::AdaptiveFeedbackPolicy policy(/*gain=*/0.5, /*initial_fraction=*/0.5);
  apps::CmeansParams p;
  p.clusters = 10;
  p.max_iterations = 10;
  core::JobConfig cfg;
  cfg.policy = &policy;
  cfg.charge_job_startup = false;
  (void)apps::cmeans_prs_modeled(cluster, 100000, 100, p, cfg);

  for (int r = 0; r < 2; ++r) {
    const double learned = policy.learned_fraction(r);
    ASSERT_GE(learned, 0.0) << "node " << r << " never observed feedback";
    EXPECT_NEAR(learned, p_star, 0.05)
        << "node " << r << ": learned " << learned << " vs Eq (8) " << p_star;
    EXPECT_LT(std::abs(learned - p_star), std::abs(0.5 - p_star));
  }
}

TEST(AdaptivePolicy, WrongStartEndsUpNoSlowerThanAnalytic) {
  auto run = [](core::SchedulePolicy* policy) {
    sim::Simulator sim;
    core::Cluster cluster(sim, 2, core::NodeConfig{});
    apps::CmeansParams p;
    p.clusters = 10;
    p.max_iterations = 10;
    core::JobConfig cfg;
    cfg.policy = policy;
    cfg.charge_job_startup = false;
    return apps::cmeans_prs_modeled(cluster, 100000, 100, p, cfg).elapsed;
  };
  core::AdaptiveFeedbackPolicy adaptive(0.5, 0.5);
  core::StaticAnalyticPolicy analytic;
  const double warmup = run(&adaptive);   // learns during these iterations
  const double learned = run(&adaptive);  // runs with the learned p
  const double optimal = run(&analytic);
  EXPECT_LT(learned, warmup);
  EXPECT_LT(learned, optimal * 1.05);
}

TEST(AdaptivePolicy, RespectsOverridesAndSingleBackend) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, core::NodeConfig{});
  core::AdaptiveFeedbackPolicy policy(0.5, 0.9);
  const auto shape = cmeans_shape(10);

  core::JobConfig forced;
  forced.cpu_fraction_override = 0.3;
  EXPECT_DOUBLE_EQ(policy.node_decision(cluster, shape, forced, 0)
                       .cpu_fraction, 0.3);

  core::JobConfig gpu_only;
  gpu_only.use_cpu = false;
  EXPECT_DOUBLE_EQ(policy.node_decision(cluster, shape, gpu_only, 0)
                       .cpu_fraction, 0.0);

  core::JobConfig cfg;
  EXPECT_DOUBLE_EQ(policy.node_decision(cluster, shape, cfg, 0).cpu_fraction,
                   0.9);  // initial_fraction until feedback arrives
}

}  // namespace
