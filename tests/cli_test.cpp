// Unit tests for the prs_run command-line parser and its mapping onto
// NodeConfig / JobConfig.
#include <gtest/gtest.h>

#include <vector>

#include "tools/cli_options.hpp"

namespace prs::tools {
namespace {

bool parse(std::vector<const char*> args, Options& out, std::string& err) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prs_run"));
  for (auto* a : args) argv.push_back(const_cast<char*>(a));
  return parse_options(static_cast<int>(argv.size()), argv.data(), out, err);
}

TEST(Cli, DefaultsAreSane) {
  Options o;
  std::string err;
  EXPECT_TRUE(parse({}, o, err)) << err;
  EXPECT_EQ(o.app, "cmeans");
  EXPECT_EQ(o.nodes, 4);
  EXPECT_FALSE(o.functional);
  EXPECT_FALSE(o.show_help);
}

TEST(Cli, ParsesAllValueOptions) {
  Options o;
  std::string err;
  EXPECT_TRUE(parse({"--app=gmm", "--testbed=bigred2", "--nodes=8",
                     "--gpus=2", "--points=12345", "--dims=60",
                     "--clusters=7", "--iterations=3", "--rows=11",
                     "--cols=22", "--scheduling=dynamic",
                     "--cpu-fraction=0.25", "--seed=9"},
                    o, err))
      << err;
  EXPECT_EQ(o.app, "gmm");
  EXPECT_EQ(o.testbed, "bigred2");
  EXPECT_EQ(o.nodes, 8);
  EXPECT_EQ(o.gpus, 2);
  EXPECT_EQ(o.points, 12345u);
  EXPECT_EQ(o.dims, 60u);
  EXPECT_EQ(o.clusters, 7);
  EXPECT_EQ(o.iterations, 3);
  EXPECT_EQ(o.rows, 11u);
  EXPECT_EQ(o.cols, 22u);
  EXPECT_EQ(o.scheduling, "dynamic");
  EXPECT_DOUBLE_EQ(o.cpu_fraction, 0.25);
  EXPECT_EQ(o.seed, 9u);
}

TEST(Cli, FlagsAndAliases) {
  Options o;
  std::string err;
  EXPECT_TRUE(parse({"--functional", "--gpu-only", "--lines=77"}, o, err));
  EXPECT_TRUE(o.functional);
  EXPECT_TRUE(o.gpu_only);
  EXPECT_EQ(o.points, 77u);
}

TEST(Cli, RejectsUnknownAndMalformed) {
  Options o;
  std::string err;
  EXPECT_FALSE(parse({"--bogus=1"}, o, err));
  EXPECT_NE(err.find("--bogus"), std::string::npos);
  EXPECT_FALSE(parse({"--nodes=zero"}, o, err));
  EXPECT_FALSE(parse({"--nodes=0"}, o, err));
  EXPECT_FALSE(parse({"--cpu-fraction=1.5"}, o, err));
  EXPECT_FALSE(parse({"--testbed=mars"}, o, err));
  EXPECT_FALSE(parse({"--scheduling=magic"}, o, err));
  EXPECT_FALSE(parse({"--policy=greedy"}, o, err));
  EXPECT_FALSE(parse({"positional"}, o, err));
}

TEST(Cli, PolicySelection) {
  // --policy accepts the three level-2 policies and wins over the legacy
  // --scheduling spelling; without it, --scheduling still decides.
  Options o;
  std::string err;
  ASSERT_TRUE(parse({"--policy=adaptive"}, o, err)) << err;
  EXPECT_EQ(o.policy_name(), "adaptive");
  // Adaptive refines the static dispatch path.
  EXPECT_EQ(o.job_config().scheduling, core::SchedulingMode::kStatic);

  Options o2;
  ASSERT_TRUE(parse({"--scheduling=dynamic", "--policy=static"}, o2, err));
  EXPECT_EQ(o2.policy_name(), "static");
  EXPECT_EQ(o2.job_config().scheduling, core::SchedulingMode::kStatic);

  Options o3;
  ASSERT_TRUE(parse({"--scheduling=dynamic"}, o3, err));
  EXPECT_EQ(o3.policy_name(), "dynamic");
  EXPECT_EQ(o3.job_config().scheduling, core::SchedulingMode::kDynamic);
}

TEST(Cli, RejectsContradictoryBackends) {
  Options o;
  std::string err;
  EXPECT_FALSE(parse({"--gpu-only", "--cpu-only"}, o, err));
  EXPECT_FALSE(parse({"--gpu-only", "--gpus=0"}, o, err));
}

TEST(Cli, HelpAndListShortCircuit) {
  Options o;
  std::string err;
  EXPECT_TRUE(parse({"--help"}, o, err));
  EXPECT_TRUE(o.show_help);
  Options o2;
  EXPECT_TRUE(parse({"--list"}, o2, err));
  EXPECT_TRUE(o2.show_list);
  EXPECT_FALSE(usage().empty());
}

TEST(Cli, NodeConfigMapping) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse({"--testbed=bigred2", "--gpus=2"}, o, err));
  auto cfg = o.node_config();
  EXPECT_EQ(cfg.cpu.name, "BigRed2 AMD Opteron 6212");
  EXPECT_EQ(cfg.gpu.name, "NVIDIA Tesla K20");
  EXPECT_EQ(cfg.gpus_per_node, 2);

  Options phi;
  ASSERT_TRUE(parse({"--testbed=phi"}, phi, err));
  EXPECT_EQ(phi.node_config().gpu.name, "Intel Xeon Phi 5110P");
}

TEST(Cli, JobConfigMapping) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse({"--scheduling=dynamic", "--functional", "--cpu-only",
                     "--cpu-fraction=0.5"},
                    o, err));
  auto cfg = o.job_config();
  EXPECT_EQ(cfg.scheduling, core::SchedulingMode::kDynamic);
  EXPECT_EQ(cfg.mode, core::ExecutionMode::kFunctional);
  EXPECT_FALSE(cfg.use_gpu);
  EXPECT_TRUE(cfg.use_cpu);
  EXPECT_DOUBLE_EQ(cfg.cpu_fraction_override, 0.5);
}

TEST(Cli, CheckpointFlagsParseAndValidate) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse({"--app=cmeans", "--functional", "--checkpoint-every=3",
                     "--checkpoint-dir=/tmp/ck", "--resume"},
                    o, err))
      << err;
  EXPECT_EQ(o.checkpoint_every, 3);
  EXPECT_EQ(o.checkpoint_dir, "/tmp/ck");
  EXPECT_TRUE(o.resume);

  // --resume alone picks interval 1 downstream but still needs a directory.
  Options dirless;
  EXPECT_FALSE(parse({"--app=cmeans", "--functional", "--resume"}, dirless,
                     err));
  Options everyless;
  EXPECT_FALSE(parse({"--app=cmeans", "--functional", "--checkpoint-every=2"},
                     everyless, err));

  // Snapshots carry real app state: modeled runs and the non-iterative apps
  // have none to carry.
  Options modeled;
  EXPECT_FALSE(parse({"--app=cmeans", "--checkpoint-every=2",
                      "--checkpoint-dir=/tmp/ck"},
                     modeled, err));
  Options wrong_app;
  EXPECT_FALSE(parse({"--app=gemv", "--functional", "--checkpoint-every=2",
                      "--checkpoint-dir=/tmp/ck"},
                     wrong_app, err));
  Options repeated;
  EXPECT_FALSE(parse({"--app=cmeans", "--functional", "--repeat=2",
                      "--checkpoint-every=2", "--checkpoint-dir=/tmp/ck"},
                     repeated, err));
  Options zero;
  EXPECT_FALSE(parse({"--app=cmeans", "--functional", "--checkpoint-every=0",
                      "--checkpoint-dir=/tmp/ck"},
                     zero, err));
}

// Regression for the silent-ignore path: --help/--list used to stop the
// parser, so anything after them — including typos — was accepted without
// validation. Unknown flags must now fail, naming the flag, no matter
// where they appear.
TEST(Cli, UnknownFlagAfterHelpOrListIsRejected) {
  Options o;
  std::string err;
  EXPECT_FALSE(parse({"--list", "--bogus=1"}, o, err));
  EXPECT_NE(err.find("--bogus"), std::string::npos) << err;

  Options o2;
  EXPECT_FALSE(parse({"--help", "--not-a-flag=2"}, o2, err));
  EXPECT_NE(err.find("--not-a-flag"), std::string::npos) << err;

  // Valid flags after --help still parse (and --help still wins).
  Options o3;
  EXPECT_TRUE(parse({"--help", "--nodes=2"}, o3, err)) << err;
  EXPECT_TRUE(o3.show_help);
  EXPECT_EQ(o3.nodes, 2);
}

TEST(Cli, ThrowingParserNamesTheFlag) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prs_run"));
  argv.push_back(const_cast<char*>("--list"));
  argv.push_back(const_cast<char*>("--bogus=1"));
  try {
    parse_options_or_throw(static_cast<int>(argv.size()), argv.data());
    FAIL() << "expected prs::InvalidArgument";
  } catch (const prs::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--bogus"), std::string::npos);
  }
}

TEST(Cli, NewAppsAccepted) {
  Options o;
  std::string err;
  EXPECT_TRUE(parse({"--app=dgemm", "--functional"}, o, err)) << err;
  EXPECT_TRUE(parse({"--app=stencil", "--functional"}, o, err)) << err;
  // Stencil checkpointing is allowed (it snapshots through run_iterative).
  EXPECT_TRUE(parse({"--app=stencil", "--functional", "--checkpoint-every=2",
                     "--checkpoint-dir=/tmp/ck"},
                    o, err))
      << err;
}

TEST(Cli, ClientFlagValidation) {
  Options o;
  std::string err;
  // Client actions need --server.
  EXPECT_FALSE(parse({"--submit"}, o, err));
  EXPECT_NE(err.find("--server"), std::string::npos) << err;
  // --server needs an action.
  Options o2;
  EXPECT_FALSE(parse({"--server=/tmp/x.sock"}, o2, err));
  // At most one action.
  Options o3;
  EXPECT_FALSE(parse({"--server=/tmp/x.sock", "--submit", "--wait-job=3"},
                     o3, err));
  // A full submit line parses.
  Options o4;
  EXPECT_TRUE(parse({"--server=/tmp/x.sock", "--tenant=alice", "--submit",
                     "--app=kmeans", "--gpu-mem=1048576"},
                    o4, err))
      << err;
  EXPECT_EQ(o4.tenant, "alice");
  EXPECT_EQ(o4.gpu_mem_bytes, 1048576u);
}

TEST(Cli, OptionsMapToJobSpec) {
  Options o;
  std::string err;
  ASSERT_TRUE(parse({"--app=gmm", "--testbed=bigred2", "--nodes=3",
                     "--gpus=2", "--points=777", "--policy=adaptive",
                     "--functional", "--seed=5"},
                    o, err))
      << err;
  svc::JobSpec s = to_job_spec(o);
  EXPECT_EQ(s.app, "gmm");
  EXPECT_EQ(s.testbed, "bigred2");
  EXPECT_EQ(s.policy, "adaptive");
  EXPECT_EQ(s.nodes, 3);
  EXPECT_EQ(s.gpus, 2);
  EXPECT_EQ(s.points, 777u);
  EXPECT_TRUE(s.functional);
  EXPECT_EQ(s.seed, 5u);
  EXPECT_EQ(s.vgpus_needed(), 6);
  EXPECT_NO_THROW(s.validate());
}

}  // namespace
}  // namespace prs::tools
