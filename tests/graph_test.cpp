// Unit tests for the task-graph runtime (graph/task_graph.hpp,
// graph/executor.hpp): construction, cycle detection, deterministic DOT
// rendering, dispatch order, cancellation, and first-failure-wins.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "graph/executor.hpp"
#include "graph/task_graph.hpp"
#include "simtime/future.hpp"
#include "simtime/process.hpp"
#include "simtime/simulator.hpp"

namespace prs::graph {
namespace {

/// Work node that burns `d` virtual seconds, then logs its label.
sim::Process timed_node(sim::Simulator& sim, double d, std::string label,
                        std::vector<std::string>* log,
                        sim::Promise<sim::Unit> done) {
  auto w = sim::delay(sim, d);
  co_await w;
  log->push_back(std::move(label));
  done.set_value(sim::Unit{});
}

/// a -> {b, c} -> d diamond over host nodes, recording execution order.
TEST(TaskGraph, DiamondRunsInDependencyOrder) {
  sim::Simulator sim;
  std::vector<std::string> log;
  TaskGraph g("diamond");
  const NodeId a = g.add_host("a", "host", 0, [&] { log.push_back("a"); });
  const NodeId b = g.add_host("b", "host", 0, [&] { log.push_back("b"); });
  const NodeId c = g.add_host("c", "host", 0, [&] { log.push_back("c"); });
  const NodeId d = g.add_host("d", "host", 0, [&] { log.push_back("d"); });
  g.depend(b, a);
  g.depend(c, a);
  g.depend(d, b);
  g.depend(d, c);
  GraphExecutor exec(sim, g);
  exec.start();
  sim.run();
  EXPECT_TRUE(exec.done());
  EXPECT_EQ(exec.completed(), 4u);
  // Host nodes cascade inline in ascending id order: a, b, c, d.
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(TaskGraph, ReadyNodesDispatchAscending) {
  sim::Simulator sim;
  std::vector<std::string> log;
  TaskGraph g("asc");
  // Three roots with equal delay: completion (and hence logging) happens at
  // the same virtual time, in dispatch = id order.
  for (int i = 0; i < 3; ++i) {
    g.add_work("n" + std::to_string(i), "delay", 0,
               [&sim, &log, i](sim::Simulator&, sim::Promise<sim::Unit> done) {
                 return timed_node(sim, 1.0, "n" + std::to_string(i), &log,
                                   std::move(done));
               });
  }
  GraphExecutor exec(sim, g);
  exec.start();
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"n0", "n1", "n2"}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(TaskGraph, CycleDetectionThrows) {
  TaskGraph g("cycle");
  const NodeId a = g.add_host("a", "host", 0, [] {});
  const NodeId b = g.add_host("b", "host", 0, [] {});
  g.depend(b, a);
  g.depend(a, b);
  EXPECT_THROW(g.validate(), Error);
}

TEST(TaskGraph, DependOnNoNodeIsNoop) {
  TaskGraph g("noop");
  const NodeId a = g.add_host("a", "host", 0, [] {});
  g.depend(a, kNoNode);
  EXPECT_EQ(g.edge_count(), 0u);
  // Duplicate edges coalesce.
  const NodeId b = g.add_host("b", "host", 0, [] {});
  g.depend(b, a);
  g.depend(b, a);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(TaskGraph, DotRenderingIsDeterministic) {
  auto build = [] {
    TaskGraph g("dot");
    const NodeId a = g.add_host("alpha", "host", 0, [] {});
    const NodeId b = g.add_work(
        "beta", "cpu", 1,
        [](sim::Simulator&, sim::Promise<sim::Unit> done) -> sim::Process {
          done.set_value(sim::Unit{});
          co_return;
        });
    g.depend(b, a);
    return g.to_dot();
  };
  const std::string d1 = build();
  const std::string d2 = build();
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1.find("digraph"), std::string::npos);
  EXPECT_NE(d1.find("alpha"), std::string::npos);
  EXPECT_NE(d1.find("beta"), std::string::npos);
  EXPECT_NE(d1.find("cluster"), std::string::npos);  // per-rank grouping
}

TEST(GraphExecutor, CancelPendingSkipsUndispatchedNodes) {
  sim::Simulator sim;
  std::vector<std::string> log;
  TaskGraph g("cancel");
  GraphExecutor* exec_ptr = nullptr;
  const NodeId a = g.add_work(
      "a", "delay", 0,
      [&](sim::Simulator&, sim::Promise<sim::Unit> done) {
        return timed_node(sim, 1.0, "a", &log, std::move(done));
      });
  // Converge-check host node cancels everything after `a` completes.
  const NodeId check = g.add_host("check", "host", 0, [&] {
    exec_ptr->cancel_pending();
  });
  g.depend(check, a);
  const NodeId b = g.add_work(
      "b", "delay", 0,
      [&](sim::Simulator&, sim::Promise<sim::Unit> done) {
        return timed_node(sim, 1.0, "b", &log, std::move(done));
      });
  g.depend(b, check);
  GraphExecutor exec(sim, g);
  exec_ptr = &exec;
  exec.start();
  sim.run();
  EXPECT_TRUE(exec.done());
  EXPECT_EQ(exec.cancelled(), 1u);
  EXPECT_EQ(log, (std::vector<std::string>{"a"}));
  (void)b;
}

TEST(GraphExecutor, FirstFailureWinsAndCancelsPending) {
  sim::Simulator sim;
  TaskGraph g("fail");
  GraphExecutor* exec_ptr = nullptr;
  std::vector<std::string> log;
  // fast fails at t=1; slow would complete at t=2; dependent never runs.
  const NodeId fast = g.add_work(
      "fast", "delay", 0,
      [&](sim::Simulator& s, sim::Promise<sim::Unit> done) -> sim::Process {
        auto w = sim::delay(s, 1.0);
        co_await w;
        exec_ptr->fail(
            std::make_exception_ptr(std::runtime_error("boom")), "fast");
        done.set_value(sim::Unit{});
      });
  const NodeId slow = g.add_work(
      "slow", "delay", 0,
      [&](sim::Simulator&, sim::Promise<sim::Unit> done) {
        return timed_node(sim, 2.0, "slow", &log, std::move(done));
      });
  const NodeId after = g.add_host("after", "host", 0,
                                  [&] { log.push_back("after"); });
  g.depend(after, fast);
  g.depend(after, slow);
  GraphExecutor exec(sim, g);
  exec_ptr = &exec;
  exec.start();
  sim.run();
  EXPECT_TRUE(exec.failed());
  EXPECT_EQ(exec.failure_site(), "fast");
  EXPECT_DOUBLE_EQ(exec.failure_time(), 1.0);
  // In-flight `slow` drains; `after` was cancelled.
  EXPECT_EQ(log, (std::vector<std::string>{"slow"}));
  EXPECT_THROW(exec.rethrow_if_failed(), std::runtime_error);
  (void)fast;
  (void)slow;
}

TEST(GraphExecutor, EmptyGraphIsImmediatelyDone) {
  sim::Simulator sim;
  TaskGraph g("empty");
  GraphExecutor exec(sim, g);
  exec.start();
  EXPECT_TRUE(exec.done());
}

}  // namespace
}  // namespace prs::graph
