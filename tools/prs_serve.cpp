// prs_serve — the multi-tenant PRS job server daemon.
//
// Owns a virtual-GPU pool multiplexed over simulated physical cards and a
// weighted fair-share scheduler, and serves the line protocol
// (svc/protocol.hpp) on a local unix socket. Jobs are submitted with
// `prs_run --server=PATH --submit ...` and produce byte-identical result
// digests to single-shot runs.
//
//   prs_serve --socket=/tmp/prs.sock --cards=2 --tenants=alice:2:4,bob:1:4
//   prs_run --server=/tmp/prs.sock --tenant=alice --submit --app=cmeans ...
//   prs_run --server=/tmp/prs.sock --shutdown-server
#include <sys/stat.h>

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"

namespace {

using namespace prs;

struct ServeOptions {
  std::string socket_path = "/tmp/prs_serve.sock";
  int cards = 2;
  int slots_per_card = 2;   // vGPU oversubscription factor
  int max_queue = 32;
  int host_threads = 0;
  std::string tenants;      // name:weight[:max_vgpus],...
  std::string metrics_path; // svc.* metrics JSON, written on shutdown
  std::string trace_path;   // per-stage span timeline, written on shutdown
  std::string journal_dir;  // write-ahead journal directory; empty = off
  int journal_gate_every = 4;    // journal a GATE record every N stages
  int journal_max_pending = 256; // fsync queue bound before shedding
  std::string crash_after;  // TYPE[:N] — _Exit(137) after the N-th fsynced
                            // record of TYPE (crash-matrix hook)
  bool show_help = false;
};

std::string usage() {
  return R"(prs_serve — multi-tenant job server for the PRS runtime

usage: prs_serve [options]
  --socket=PATH        unix socket to listen on (default /tmp/prs_serve.sock)
  --cards=N            physical simulated cards in the vGPU pool (default 2)
  --slots-per-card=N   vGPU slots per card, i.e. the oversubscription
                       factor (default 2)
  --max-queue=N        global bound on queued jobs; submits beyond it are
                       rejected with code=queue_full (default 32)
  --tenants=SPEC       comma-separated name:weight[:max_vgpus] entries,
                       e.g. "alice:2:4,bob:1:4"; weight drives the stride
                       fair-share scheduler. Default: one tenant "default"
                       with weight 1.
  --host-threads=N     real host threads for the shared numeric pool
  --metrics=FILE       write svc.* metrics JSON on shutdown
  --trace=FILE         write the per-stage Chrome trace on shutdown
  --journal-dir=DIR    write-ahead journal for crash recovery: job
                       transitions are logged to DIR/journal.wal and
                       replayed on startup, re-admitting incomplete jobs
                       (resuming from their checkpoints when available)
  --journal-gate-every=N
                       journal a GATE progress record every N settled
                       stages (default 4; 0 disables GATE records)
  --journal-max-pending=N
                       journal fsync queue bound; submits beyond it get
                       RETRY-AFTER instead of blocking (default 256)
  --crash-after-journal=TYPE[:N]
                       test hook: _Exit(137) right after the N-th (default
                       1st) fsynced record of TYPE (submit|start|gate|
                       done|fail|cancel) — drives the crash matrix
  --help               this text

Stop with: prs_run --server=PATH --shutdown-server
)";
}

bool parse_int_arg(const std::string& v, int& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc() && p == v.data() + v.size();
}

bool parse_serve_options(int argc, char** argv, ServeOptions& out,
                         std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out.show_help = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      error = "unrecognized argument: " + arg + " (see --help)";
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    bool ok = true;
    if (key == "socket") {
      out.socket_path = val;
      ok = !val.empty();
    } else if (key == "cards") {
      ok = parse_int_arg(val, out.cards) && out.cards >= 1;
    } else if (key == "slots-per-card") {
      ok = parse_int_arg(val, out.slots_per_card) && out.slots_per_card >= 1;
    } else if (key == "max-queue") {
      ok = parse_int_arg(val, out.max_queue) && out.max_queue >= 1;
    } else if (key == "host-threads") {
      ok = parse_int_arg(val, out.host_threads) && out.host_threads >= 0 &&
           out.host_threads <= exec::ThreadPool::kMaxThreads;
    } else if (key == "tenants") {
      out.tenants = val;
      ok = !val.empty();
    } else if (key == "metrics") {
      out.metrics_path = val;
      ok = !val.empty();
    } else if (key == "trace") {
      out.trace_path = val;
      ok = !val.empty();
    } else if (key == "journal-dir") {
      out.journal_dir = val;
      ok = !val.empty();
    } else if (key == "journal-gate-every") {
      ok = parse_int_arg(val, out.journal_gate_every) &&
           out.journal_gate_every >= 0;
    } else if (key == "journal-max-pending") {
      ok = parse_int_arg(val, out.journal_max_pending) &&
           out.journal_max_pending >= 1;
    } else if (key == "crash-after-journal") {
      out.crash_after = val;
      ok = !val.empty();
    } else {
      error = "unknown option: --" + key + " (see --help)";
      return false;
    }
    if (!ok) {
      error = "invalid value for --" + key + ": " + val;
      return false;
    }
  }
  return true;
}

/// Parses "name:weight[:max_vgpus]" entries and registers them.
void add_tenants(svc::JobServer& server, const std::string& spec,
                 int pool_capacity) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= entry.size()) {
      auto colon = entry.find(':', p);
      if (colon == std::string::npos) colon = entry.size();
      parts.push_back(entry.substr(p, colon - p));
      p = colon + 1;
    }
    PRS_REQUIRE(!parts.empty() && !parts[0].empty(),
                "malformed --tenants entry '" + entry + "'");
    svc::TenantQuota quota;
    quota.max_vgpus = pool_capacity;
    if (parts.size() >= 2) {
      try {
        quota.weight = std::stod(parts[1]);
      } catch (...) {
        throw InvalidArgument("malformed tenant weight in '" + entry + "'");
      }
      PRS_REQUIRE(quota.weight > 0.0,
                  "tenant weight must be positive in '" + entry + "'");
    }
    if (parts.size() >= 3) {
      int v = 0;
      PRS_REQUIRE(parse_int_arg(parts[2], v) && v >= 1,
                  "malformed tenant max_vgpus in '" + entry + "'");
      quota.max_vgpus = v;
    }
    PRS_REQUIRE(parts.size() <= 3,
                "too many ':' fields in --tenants entry '" + entry + "'");
    server.add_tenant(parts[0], quota);
  }
}

/// Wires --crash-after-journal=TYPE[:N] to a post-sync _Exit(137) so the
/// crash matrix can kill the daemon at a precise durability boundary.
void arm_crash_hook(svc::Journal& journal, const std::string& spec) {
  std::string name = spec;
  std::uint64_t nth = 1;
  if (auto colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    int n = 0;
    PRS_REQUIRE(parse_int_arg(spec.substr(colon + 1), n) && n >= 1,
                "malformed --crash-after-journal count in '" + spec + "'");
    nth = static_cast<std::uint64_t>(n);
  }
  svc::JournalRecordType type;
  PRS_REQUIRE(svc::parse_journal_record_name(name, &type),
              "unknown --crash-after-journal record type '" + name + "'");
  journal.set_post_sync_hook(
      [type, nth](svc::JournalRecordType t, std::uint64_t count) {
        if (t == type && count >= nth) {
          // _Exit: no destructors, no flush — exactly what a crash is.
          std::_Exit(137);
        }
      });
}

int serve(const ServeOptions& opt) {
  if (opt.host_threads > 0) {
    exec::ThreadPool::instance().configure(opt.host_threads);
  }
  std::unique_ptr<svc::Journal> journal;
  if (!opt.journal_dir.empty()) {
    ::mkdir(opt.journal_dir.c_str(), 0755);  // EEXIST is fine
    svc::Journal::Config jcfg;
    jcfg.path = opt.journal_dir + "/journal.wal";
    jcfg.max_pending = opt.journal_max_pending;
    journal = std::make_unique<svc::Journal>(jcfg);
    if (!opt.crash_after.empty()) arm_crash_hook(*journal, opt.crash_after);
  } else {
    PRS_REQUIRE(opt.crash_after.empty(),
                "--crash-after-journal requires --journal-dir");
  }
  svc::JobServer::Config cfg;
  cfg.pool.cards = opt.cards;
  cfg.pool.slots_per_card = opt.slots_per_card;
  cfg.admission.max_queue_depth = opt.max_queue;
  cfg.record_trace = !opt.trace_path.empty();
  cfg.journal = journal.get();
  cfg.journal_gate_every = opt.journal_gate_every;
  svc::JobServer server(cfg);
  if (opt.tenants.empty()) {
    svc::TenantQuota quota;
    quota.max_vgpus = server.pool().capacity();
    server.add_tenant("default", quota);
  } else {
    add_tenants(server, opt.tenants, server.pool().capacity());
  }
  if (journal) {
    const svc::JobServer::RecoveryStats rec = server.recover();
    if (rec.journal_records > 0) {
      std::printf(
          "recovered %d job(s) from %s (%d record(s)%s): "
          "%d restored, %d resumed from checkpoint, %d failed\n",
          rec.jobs_recovered, journal->path().c_str(), rec.journal_records,
          rec.torn_tail ? ", torn tail" : "", rec.jobs_restored,
          rec.jobs_resumed, rec.jobs_failed);
    }
  }
  server.start();

  svc::SocketServer sock(
      opt.socket_path,
      [&server](const std::string& line, bool* shutdown) {
        return svc::handle_request(server, line, shutdown);
      });
  // The readiness line CI (and scripts) wait for before submitting.
  std::printf("listening on %s (%d card(s) x %d slot(s), queue bound %d)\n",
              opt.socket_path.c_str(), opt.cards, opt.slots_per_card,
              opt.max_queue);
  std::fflush(stdout);

  sock.wait_for_shutdown();
  sock.stop();
  server.stop();

  int rc = 0;
  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    out << server.metrics_json();
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   opt.metrics_path.c_str());
      rc = 1;
    }
  }
  if (!opt.trace_path.empty()) {
    try {
      server.export_trace(opt.trace_path);
    } catch (const prs::Error& e) {
      std::fprintf(stderr, "error: trace export failed: %s\n", e.what());
      rc = 1;
    }
  }
  std::printf("server stopped\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt;
  std::string error;
  if (!parse_serve_options(argc, argv, opt, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (opt.show_help) {
    std::printf("%s", usage().c_str());
    return 0;
  }
  try {
    return serve(opt);
  } catch (const prs::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
