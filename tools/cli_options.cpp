#include "tools/cli_options.hpp"

#include <charconv>
#include <cstring>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"

namespace prs::tools {
namespace {

bool parse_u64(const std::string& v, std::uint64_t& out) {
  const char* b = v.data();
  const char* e = b + v.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

bool parse_int(const std::string& v, int& out) {
  const char* b = v.data();
  const char* e = b + v.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

bool parse_double(const std::string& v, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string usage() {
  return R"(prs_run — run an SPMD application on a simulated CPU+GPU cluster

usage: prs_run [options]
  --app=NAME          cmeans | kmeans | gmm | gemv | dgemm | fft |
                      wordcount | stencil
  --testbed=NAME      delta (default) | bigred2 | phi
  --nodes=N           fat nodes in the cluster (default 4)
  --gpus=N            GPU cards per node (default 1)
  --points=N          input items / points / signals / lines
  --dims=D            point dimensionality (clustering apps)
  --clusters=M        clusters / mixture components
  --iterations=I      max iterations (iterative apps)
  --rows=M --cols=N   GEMV/DGEMM shape (--dims is DGEMM's K and the
                      stencil grid's rows); --cols is also the FFT
                      signal size
  --scheduling=MODE   static (default, Eq (8)) | dynamic (block polling)
  --policy=NAME       level-2 scheduling policy: static | dynamic |
                      adaptive (analytic p refined per iteration from
                      observed busy times); overrides --scheduling
  --cpu-fraction=P    override the analytic CPU share p in [0,1]
  --engine=NAME       stages (default; reference stage runner) | graph
                      (task-graph runtime: per-block D2H copies overlap
                      later kernels, first failure propagates immediately;
                      numeric results are byte-identical)
  --pipeline-depth=N  graph engine: iterations in flight (default 1);
                      N>1 pipelines iterative apps — iteration i+1's map
                      starts on partitions whose reduce finished
  --graph-dump=FILE   write the job's task graph as Graphviz DOT (implies
                      --engine=graph; iterative jobs overwrite FILE per
                      window)
  --functional        compute real results (default: modeled virtual time)
  --gpu-only          disable the CPU backend
  --cpu-only          disable the GPU backend
  --seed=S            RNG seed (default 42)
  --repeat=N          run the job N times, resetting counters in between
  --host-threads=N    real host threads driving the numeric map kernels
                      (default 0 = $PRS_HOST_THREADS, else all cores);
                      results are byte-identical for any N
  --simd=LEVEL        host kernel instruction set: scalar | avx2 | avx512 |
                      auto (default; also $PRS_SIMD). Deterministic-tier
                      kernels are byte-identical across levels; requesting
                      an unsupported level fails loudly
  --simd-fma          allow fused/reassociated (FMA) kernels in dot/nrm2/
                      gemm hot loops (also $PRS_SIMD_FMA=1). Faster, but
                      waives cross-level bit-identity (ULP-bounded)
  --simd-calibrate    micro-benchmark the host vector speedup and scale the
                      roofline CPU rate Fc in the Eq (8) split by it
  --numa=MODE         NUMA-aware host execution: on | off (default; also
                      $PRS_NUMA). On: worker lanes pin to their socket's
                      CPUs, steal socket-local first, first-touch their
                      input share, and wordcount shuffles through per-lane
                      kv-stores. Placement only — results are
                      byte-identical on or off ($PRS_NUMA_TOPOLOGY injects
                      a synthetic layout, e.g. "2x4")

  --fault-spec=SPEC   inject faults and run fault-tolerant, e.g.
                      "gpu_hang:node1:t=2ms", "link_drop:*:p=0.01",
                      "slow_node:node3:x4", "node_crash:node2:t=5ms";
                      ';'-separated clauses compose (see DESIGN.md)
  --fault-seed=S      seed of the fault injector's RNG streams (default 1)
  --checkpoint-every=N  snapshot the iterative driver's state every N
                      iterations into --checkpoint-dir (functional
                      cmeans/kmeans/gmm only); a node_crash then halts
                      with the latest snapshot preserved on disk
  --checkpoint-dir=DIR  directory for checkpoint snapshots
  --resume            resume from the latest snapshot in --checkpoint-dir;
                      the run must use the same input flags and seeds
  --trace=FILE        write a Chrome trace-event JSON timeline (open in
                      chrome://tracing or https://ui.perfetto.dev)
  --metrics=FILE      write runtime metrics (JSON if FILE ends in .json,
                      CSV otherwise)

client mode (against a running prs_serve; see DESIGN.md "Service layer"):
  --server=PATH       the prs_serve unix socket; required by all actions
  --tenant=NAME       tenant identity for --submit (default "default")
  --submit            submit this job to the server, wait for it and print
                      its result lines (digests match a single-shot run)
  --gpu-mem=BYTES     per-vGPU device-memory quota to request with --submit
  --job-status=ID     print one job's status line
  --wait-job=ID       block until a job is terminal, print its results
  --cancel-job=ID     cancel a queued or running job
  --server-stats      print the server's svc.* metrics as JSON
  --drain-server      stop admissions; running jobs finish
  --shutdown-server   stop the server
  --server-retries=N  reconnect/backoff budget for client requests: ride
                      out a server restart or RETRY-AFTER shedding with up
                      to N retries (default 0 = fail fast)
  --retry-base-ms=MS  first backoff sleep; doubles per retry with seeded
                      jitter, capped at 2000ms (default 50)
  --retry-seed=S      jitter stream seed (deterministic schedule; default 1)
  --server-timeout-ms=MS  per-request response deadline; expiry reconnects
                      and retries (0 = wait forever, the default)
  --dedup=KEY         idempotent submission: a retried SUBMIT with the same
                      tenant+KEY returns the existing job id instead of
                      admitting a duplicate (recommended with
                      --server-retries)

  --list              list apps and testbeds
  --help              this text
)";
}

bool parse_options(int argc, char** argv, Options& out, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --help/--list do NOT stop parsing: every later flag is still
    // validated, so a typo after them fails loudly instead of being
    // silently ignored.
    if (arg == "--help" || arg == "-h") {
      out.show_help = true;
      continue;
    }
    if (arg == "--list") {
      out.show_list = true;
      continue;
    }
    if (arg == "--functional") {
      out.functional = true;
      continue;
    }
    if (arg == "--gpu-only") {
      out.gpu_only = true;
      continue;
    }
    if (arg == "--cpu-only") {
      out.cpu_only = true;
      continue;
    }
    if (arg == "--resume") {
      out.resume = true;
      continue;
    }
    if (arg == "--simd-fma") {
      out.simd_fma = true;
      continue;
    }
    if (arg == "--simd-calibrate") {
      out.simd_calibrate = true;
      continue;
    }
    if (arg == "--submit") {
      out.submit = true;
      continue;
    }
    if (arg == "--server-stats") {
      out.server_stats = true;
      continue;
    }
    if (arg == "--drain-server") {
      out.drain_server = true;
      continue;
    }
    if (arg == "--shutdown-server") {
      out.shutdown_server = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      error = "unrecognized argument: " + arg + " (see --help)";
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    bool ok = true;
    std::uint64_t u = 0;
    if (key == "app") {
      out.app = val;
    } else if (key == "testbed") {
      out.testbed = val;
      ok = val == "delta" || val == "bigred2" || val == "phi";
    } else if (key == "scheduling") {
      out.scheduling = val;
      ok = val == "static" || val == "dynamic";
    } else if (key == "policy") {
      out.policy = val;
      ok = val == "static" || val == "dynamic" || val == "adaptive";
    } else if (key == "nodes") {
      ok = parse_int(val, out.nodes) && out.nodes >= 1;
    } else if (key == "gpus") {
      ok = parse_int(val, out.gpus) && out.gpus >= 0;
    } else if (key == "points" || key == "lines" || key == "signals") {
      ok = parse_u64(val, u) && u > 0;
      out.points = u;
    } else if (key == "dims") {
      ok = parse_u64(val, u) && u > 0;
      out.dims = u;
    } else if (key == "clusters" || key == "components") {
      ok = parse_int(val, out.clusters) && out.clusters >= 1;
    } else if (key == "iterations") {
      ok = parse_int(val, out.iterations) && out.iterations >= 1;
    } else if (key == "rows") {
      ok = parse_u64(val, u) && u > 0;
      out.rows = u;
    } else if (key == "cols") {
      ok = parse_u64(val, u) && u > 0;
      out.cols = u;
    } else if (key == "cpu-fraction") {
      ok = parse_double(val, out.cpu_fraction) && out.cpu_fraction >= 0.0 &&
           out.cpu_fraction <= 1.0;
    } else if (key == "seed") {
      ok = parse_u64(val, out.seed);
    } else if (key == "engine") {
      out.engine = val;
      ok = val == "stages" || val == "graph";
    } else if (key == "pipeline-depth") {
      ok = parse_int(val, out.pipeline_depth) && out.pipeline_depth >= 1 &&
           out.pipeline_depth <= 64;
    } else if (key == "graph-dump") {
      out.graph_dump = val;
      ok = !val.empty();
    } else if (key == "fault-spec") {
      out.fault_spec = val;
      ok = !val.empty();
    } else if (key == "fault-seed") {
      ok = parse_u64(val, out.fault_seed);
    } else if (key == "checkpoint-every") {
      ok = parse_int(val, out.checkpoint_every) && out.checkpoint_every >= 1;
    } else if (key == "checkpoint-dir") {
      out.checkpoint_dir = val;
      ok = !val.empty();
    } else if (key == "repeat") {
      ok = parse_int(val, out.repeat) && out.repeat >= 1;
    } else if (key == "simd") {
      out.simd = val;
      ok = val == "scalar" || val == "avx2" || val == "avx512" ||
           val == "auto";
    } else if (key == "numa") {
      out.numa = val;
      ok = val == "on" || val == "off";
    } else if (key == "host-threads") {
      ok = parse_int(val, out.host_threads) && out.host_threads >= 0 &&
           out.host_threads <= exec::ThreadPool::kMaxThreads;
    } else if (key == "trace") {
      out.trace_path = val;
      ok = !val.empty();
    } else if (key == "metrics") {
      out.metrics_path = val;
      ok = !val.empty();
    } else if (key == "server") {
      out.server_socket = val;
      ok = !val.empty();
    } else if (key == "tenant") {
      out.tenant = val;
      ok = !val.empty();
    } else if (key == "job-status") {
      ok = parse_int(val, out.job_status) && out.job_status >= 1;
    } else if (key == "wait-job") {
      ok = parse_int(val, out.wait_job) && out.wait_job >= 1;
    } else if (key == "cancel-job") {
      ok = parse_int(val, out.cancel_job) && out.cancel_job >= 1;
    } else if (key == "gpu-mem") {
      ok = parse_u64(val, out.gpu_mem_bytes) && out.gpu_mem_bytes > 0;
    } else if (key == "server-retries") {
      ok = parse_int(val, out.server_retries) && out.server_retries >= 0;
    } else if (key == "retry-base-ms") {
      ok = parse_int(val, out.retry_base_ms) && out.retry_base_ms >= 1;
    } else if (key == "server-timeout-ms") {
      ok = parse_int(val, out.server_timeout_ms) && out.server_timeout_ms >= 0;
    } else if (key == "retry-seed") {
      ok = parse_u64(val, out.retry_seed);
    } else if (key == "dedup") {
      out.dedup = val;
      ok = !val.empty() && val.find(' ') == std::string::npos;
    } else {
      error = "unknown option: --" + key + " (see --help)";
      return false;
    }
    if (!ok) {
      error = "invalid value for --" + key + ": " + val;
      return false;
    }
  }
  if (out.gpu_only && out.cpu_only) {
    error = "--gpu-only and --cpu-only are mutually exclusive";
    return false;
  }
  if (out.gpu_only && out.gpus == 0) {
    error = "--gpu-only requires --gpus >= 1";
    return false;
  }
  if ((out.checkpoint_every > 0 || out.resume) && out.checkpoint_dir.empty()) {
    error = "--checkpoint-every/--resume require --checkpoint-dir";
    return false;
  }
  if (!out.checkpoint_dir.empty()) {
    if (out.app != "cmeans" && out.app != "kmeans" && out.app != "gmm" &&
        out.app != "stencil") {
      error = "checkpointing supports the iterative apps only "
              "(--app=cmeans|kmeans|gmm|stencil)";
      return false;
    }
    if (!out.functional) {
      error = "checkpointing requires --functional (snapshots carry real "
              "application state)";
      return false;
    }
    if (out.repeat != 1) {
      error = "--checkpoint-dir and --repeat are mutually exclusive";
      return false;
    }
  }
  if (out.engine == "stages" && !out.graph_dump.empty()) {
    error = "--graph-dump requires the graph engine (drop --engine=stages)";
    return false;
  }
  if (out.pipeline_depth > 1 && out.engine_name() != "graph") {
    error = "--pipeline-depth > 1 requires --engine=graph";
    return false;
  }
  if (out.engine_name() == "graph" && out.policy_name() == "dynamic") {
    error = "--engine=graph requires a static-dispatch policy "
            "(--policy=static|adaptive)";
    return false;
  }
  const int client_actions = (out.submit ? 1 : 0) +
                             (out.job_status >= 0 ? 1 : 0) +
                             (out.wait_job >= 0 ? 1 : 0) +
                             (out.cancel_job >= 0 ? 1 : 0) +
                             (out.server_stats ? 1 : 0) +
                             (out.drain_server ? 1 : 0) +
                             (out.shutdown_server ? 1 : 0);
  if (client_actions > 1) {
    error = "client actions (--submit/--job-status/--wait-job/--cancel-job/"
            "--server-stats/--drain-server/--shutdown-server) are mutually "
            "exclusive";
    return false;
  }
  if (client_actions == 1 && out.server_socket.empty()) {
    error = "client actions require --server=PATH (the prs_serve socket)";
    return false;
  }
  if (client_actions == 0 && !out.server_socket.empty()) {
    error = "--server requires a client action (--submit/--job-status/"
            "--wait-job/--cancel-job/--server-stats/--drain-server/"
            "--shutdown-server)";
    return false;
  }
  if (out.submit && out.repeat != 1) {
    error = "--submit and --repeat are mutually exclusive";
    return false;
  }
  if (!out.dedup.empty() && !out.submit) {
    error = "--dedup only applies to --submit (it is the idempotent "
            "submission key)";
    return false;
  }
  if ((out.server_retries > 0 || out.server_timeout_ms > 0) &&
      out.server_socket.empty()) {
    error = "--server-retries/--server-timeout-ms require client mode "
            "(--server=PATH)";
    return false;
  }
  if (out.submit && (!out.trace_path.empty() || !out.metrics_path.empty())) {
    error = "--trace/--metrics are not supported in client mode (the trace "
            "lives in the server; see prs_serve --trace)";
    return false;
  }
  if (out.submit && !out.graph_dump.empty()) {
    error = "--graph-dump is not supported in client mode (the graph lives "
            "in the server)";
    return false;
  }
  if (out.submit &&
      (!out.simd.empty() || out.simd_fma || out.simd_calibrate)) {
    error = "--simd/--simd-fma/--simd-calibrate are not supported in client "
            "mode (kernels run in the server process)";
    return false;
  }
  if (out.submit && !out.numa.empty()) {
    error = "--numa is not supported in client mode (host placement belongs "
            "to the server process)";
    return false;
  }
  return true;
}

Options parse_options_or_throw(int argc, char** argv) {
  Options out;
  std::string error;
  if (!parse_options(argc, argv, out, error)) {
    throw InvalidArgument(error);
  }
  return out;
}

svc::JobSpec to_job_spec(const Options& o) {
  svc::JobSpec s;
  s.app = o.app;
  s.testbed = o.testbed;
  s.policy = o.policy_name();
  s.nodes = o.nodes;
  s.gpus = o.gpus;
  s.points = o.points;
  s.dims = o.dims;
  s.clusters = o.clusters;
  s.iterations = o.iterations;
  s.rows = o.rows;
  s.cols = o.cols;
  s.functional = o.functional;
  s.gpu_only = o.gpu_only;
  s.cpu_only = o.cpu_only;
  s.cpu_fraction = o.cpu_fraction;
  s.seed = o.seed;
  s.engine = o.engine_name();
  s.pipeline_depth = o.pipeline_depth;
  s.fault_spec = o.fault_spec;
  s.fault_seed = o.fault_seed;
  s.checkpoint_every = o.checkpoint_every;
  s.checkpoint_dir = o.checkpoint_dir;
  s.resume = o.resume;
  s.gpu_mem_bytes = o.gpu_mem_bytes;
  return s;
}

}  // namespace prs::tools
