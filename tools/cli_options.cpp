#include "tools/cli_options.hpp"

#include <charconv>
#include <cstring>

#include "exec/thread_pool.hpp"

namespace prs::tools {
namespace {

bool parse_u64(const std::string& v, std::uint64_t& out) {
  const char* b = v.data();
  const char* e = b + v.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

bool parse_int(const std::string& v, int& out) {
  const char* b = v.data();
  const char* e = b + v.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

bool parse_double(const std::string& v, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string usage() {
  return R"(prs_run — run an SPMD application on a simulated CPU+GPU cluster

usage: prs_run [options]
  --app=NAME          cmeans | kmeans | gmm | gemv | fft | wordcount
  --testbed=NAME      delta (default) | bigred2 | phi
  --nodes=N           fat nodes in the cluster (default 4)
  --gpus=N            GPU cards per node (default 1)
  --points=N          input items / points / signals / lines
  --dims=D            point dimensionality (clustering apps)
  --clusters=M        clusters / mixture components
  --iterations=I      max iterations (iterative apps)
  --rows=M --cols=N   GEMV shape; --cols is also the FFT signal size
  --scheduling=MODE   static (default, Eq (8)) | dynamic (block polling)
  --policy=NAME       level-2 scheduling policy: static | dynamic |
                      adaptive (analytic p refined per iteration from
                      observed busy times); overrides --scheduling
  --cpu-fraction=P    override the analytic CPU share p in [0,1]
  --functional        compute real results (default: modeled virtual time)
  --gpu-only          disable the CPU backend
  --cpu-only          disable the GPU backend
  --seed=S            RNG seed (default 42)
  --repeat=N          run the job N times, resetting counters in between
  --host-threads=N    real host threads driving the numeric map kernels
                      (default 0 = $PRS_HOST_THREADS, else all cores);
                      results are byte-identical for any N

  --fault-spec=SPEC   inject faults and run fault-tolerant, e.g.
                      "gpu_hang:node1:t=2ms", "link_drop:*:p=0.01",
                      "slow_node:node3:x4", "node_crash:node2:t=5ms";
                      ';'-separated clauses compose (see DESIGN.md)
  --fault-seed=S      seed of the fault injector's RNG streams (default 1)
  --checkpoint-every=N  snapshot the iterative driver's state every N
                      iterations into --checkpoint-dir (functional
                      cmeans/kmeans/gmm only); a node_crash then halts
                      with the latest snapshot preserved on disk
  --checkpoint-dir=DIR  directory for checkpoint snapshots
  --resume            resume from the latest snapshot in --checkpoint-dir;
                      the run must use the same input flags and seeds
  --trace=FILE        write a Chrome trace-event JSON timeline (open in
                      chrome://tracing or https://ui.perfetto.dev)
  --metrics=FILE      write runtime metrics (JSON if FILE ends in .json,
                      CSV otherwise)
  --list              list apps and testbeds
  --help              this text
)";
}

bool parse_options(int argc, char** argv, Options& out, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out.show_help = true;
      return true;
    }
    if (arg == "--list") {
      out.show_list = true;
      return true;
    }
    if (arg == "--functional") {
      out.functional = true;
      continue;
    }
    if (arg == "--gpu-only") {
      out.gpu_only = true;
      continue;
    }
    if (arg == "--cpu-only") {
      out.cpu_only = true;
      continue;
    }
    if (arg == "--resume") {
      out.resume = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      error = "unrecognized argument: " + arg + " (see --help)";
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    bool ok = true;
    std::uint64_t u = 0;
    if (key == "app") {
      out.app = val;
    } else if (key == "testbed") {
      out.testbed = val;
      ok = val == "delta" || val == "bigred2" || val == "phi";
    } else if (key == "scheduling") {
      out.scheduling = val;
      ok = val == "static" || val == "dynamic";
    } else if (key == "policy") {
      out.policy = val;
      ok = val == "static" || val == "dynamic" || val == "adaptive";
    } else if (key == "nodes") {
      ok = parse_int(val, out.nodes) && out.nodes >= 1;
    } else if (key == "gpus") {
      ok = parse_int(val, out.gpus) && out.gpus >= 0;
    } else if (key == "points" || key == "lines" || key == "signals") {
      ok = parse_u64(val, u) && u > 0;
      out.points = u;
    } else if (key == "dims") {
      ok = parse_u64(val, u) && u > 0;
      out.dims = u;
    } else if (key == "clusters" || key == "components") {
      ok = parse_int(val, out.clusters) && out.clusters >= 1;
    } else if (key == "iterations") {
      ok = parse_int(val, out.iterations) && out.iterations >= 1;
    } else if (key == "rows") {
      ok = parse_u64(val, u) && u > 0;
      out.rows = u;
    } else if (key == "cols") {
      ok = parse_u64(val, u) && u > 0;
      out.cols = u;
    } else if (key == "cpu-fraction") {
      ok = parse_double(val, out.cpu_fraction) && out.cpu_fraction >= 0.0 &&
           out.cpu_fraction <= 1.0;
    } else if (key == "seed") {
      ok = parse_u64(val, out.seed);
    } else if (key == "fault-spec") {
      out.fault_spec = val;
      ok = !val.empty();
    } else if (key == "fault-seed") {
      ok = parse_u64(val, out.fault_seed);
    } else if (key == "checkpoint-every") {
      ok = parse_int(val, out.checkpoint_every) && out.checkpoint_every >= 1;
    } else if (key == "checkpoint-dir") {
      out.checkpoint_dir = val;
      ok = !val.empty();
    } else if (key == "repeat") {
      ok = parse_int(val, out.repeat) && out.repeat >= 1;
    } else if (key == "host-threads") {
      ok = parse_int(val, out.host_threads) && out.host_threads >= 0 &&
           out.host_threads <= exec::ThreadPool::kMaxThreads;
    } else if (key == "trace") {
      out.trace_path = val;
      ok = !val.empty();
    } else if (key == "metrics") {
      out.metrics_path = val;
      ok = !val.empty();
    } else {
      error = "unknown option: --" + key + " (see --help)";
      return false;
    }
    if (!ok) {
      error = "invalid value for --" + key + ": " + val;
      return false;
    }
  }
  if (out.gpu_only && out.cpu_only) {
    error = "--gpu-only and --cpu-only are mutually exclusive";
    return false;
  }
  if (out.gpu_only && out.gpus == 0) {
    error = "--gpu-only requires --gpus >= 1";
    return false;
  }
  if ((out.checkpoint_every > 0 || out.resume) && out.checkpoint_dir.empty()) {
    error = "--checkpoint-every/--resume require --checkpoint-dir";
    return false;
  }
  if (!out.checkpoint_dir.empty()) {
    if (out.app != "cmeans" && out.app != "kmeans" && out.app != "gmm") {
      error = "checkpointing supports the iterative apps only "
              "(--app=cmeans|kmeans|gmm)";
      return false;
    }
    if (!out.functional) {
      error = "checkpointing requires --functional (snapshots carry real "
              "application state)";
      return false;
    }
    if (out.repeat != 1) {
      error = "--checkpoint-dir and --repeat are mutually exclusive";
      return false;
    }
  }
  return true;
}

}  // namespace prs::tools
