// prs_run — command-line driver for the PRS runtime.
//
// Runs any built-in application on a configurable simulated cluster and
// prints results plus the runtime's scheduling/utilization statistics.
//
//   prs_run --app=cmeans --nodes=4 --points=200000 --dims=100 --clusters=10
//   prs_run --app=gemv --rows=35000 --cols=10000 --gpu-only
//   prs_run --app=wordcount --lines=20000 --mode=functional
//   prs_run --app=gmm --testbed=bigred2 --gpus=1 --scheduling=dynamic
//   prs_run --app=cmeans --policy=adaptive --repeat=3
//   prs_run --list
//
// Modeled mode (default for big inputs) charges paper-scale virtual time
// without allocating the data; functional mode computes real results.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/cmeans.hpp"
#include "apps/fftbatch.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "apps/wordcount.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/store.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "data/dataset.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/pool_metrics.hpp"
#include "obs/trace.hpp"
#include "tools/cli_options.hpp"

namespace {

using namespace prs;

void print_stats(const core::JobStats& s, int nodes) {
  std::printf("\n-- runtime statistics --\n");
  std::printf("virtual time        %s\n",
              units::format_time(s.elapsed).c_str());
  std::printf("throughput          %s (%s per node)\n",
              units::format_flops(s.flops_rate()).c_str(),
              units::format_flops(s.flops_rate() / nodes).c_str());
  std::printf("CPU / GPU flops     %.3g / %.3g (CPU share %.1f%%)\n",
              s.cpu_flops, s.gpu_flops,
              s.total_flops() > 0 ? s.cpu_flops / s.total_flops() * 100 : 0);
  std::printf("map tasks           %llu (+%llu reduce)\n",
              static_cast<unsigned long long>(s.map_tasks),
              static_cast<unsigned long long>(s.reduce_tasks));
  std::printf("PCI-E traffic       %s\n",
              units::format_bytes(s.pcie_bytes).c_str());
  std::printf("network traffic     %s\n",
              units::format_bytes(s.network_bytes).c_str());
  const double phases = s.startup_time + s.map_time + s.shuffle_time +
                        s.reduce_time + s.gather_time;
  if (phases > 0) {
    std::printf(
        "phase breakdown     startup %.0f%% | map %.0f%% | shuffle %.0f%% | "
        "reduce %.0f%% | gather %.0f%%\n",
        s.startup_time / phases * 100, s.map_time / phases * 100,
        s.shuffle_time / phases * 100, s.reduce_time / phases * 100,
        s.gather_time / phases * 100);
  }
  const exec::PoolStats pool = exec::ThreadPool::instance().stats();
  if (pool.jobs > 0) {
    std::printf(
        "host pool           %d thread(s) | %llu region(s) | %llu chunks "
        "(%llu stolen) | occupancy %.0f%%\n",
        pool.threads, static_cast<unsigned long long>(pool.jobs),
        static_cast<unsigned long long>(pool.chunks),
        static_cast<unsigned long long>(pool.stolen_chunks),
        pool.occupancy() * 100.0);
  }
}

void print_fault_summary(const fault::FaultInjector& inj,
                         const core::JobStats& s) {
  const auto& st = inj.stats();
  std::printf("\n-- fault injection --\n");
  std::printf("plan                %s (seed %llu)\n",
              inj.plan().summary().c_str(),
              static_cast<unsigned long long>(inj.seed()));
  std::printf("injected            %llu hangs | %llu slowdowns | "
              "%llu task errors | %llu drops | %llu delays | %llu dups\n",
              static_cast<unsigned long long>(st.hangs),
              static_cast<unsigned long long>(st.slowdowns),
              static_cast<unsigned long long>(st.task_errors),
              static_cast<unsigned long long>(st.drops),
              static_cast<unsigned long long>(st.delays),
              static_cast<unsigned long long>(st.duplicates));
  std::printf("tolerated           %llu retries | %llu speculations "
              "(%llu won) | %llu duplicates discarded | %llu retransmits\n",
              static_cast<unsigned long long>(s.task_retries),
              static_cast<unsigned long long>(s.speculations),
              static_cast<unsigned long long>(s.speculative_wins),
              static_cast<unsigned long long>(s.double_completions),
              static_cast<unsigned long long>(s.retransmits));
  std::printf("degradation         %d node(s) blacklisted, %d job attempt(s)\n",
              s.blacklisted_nodes, s.job_attempts);
}

/// Per-node utilization: busy time and link traffic from each FatNode's
/// counters, plus utilization relative to the job's virtual span.
void print_node_table(core::Cluster& cluster, double elapsed) {
  std::printf("\n-- per-node utilization --\n");
  TextTable t({"node", "cpu busy", "cpu util", "gpu busy", "gpu util",
               "pcie traffic"});
  auto pct = [](double busy, double denom) {
    if (denom <= 0.0) return std::string("-");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", busy / denom * 100.0);
    return std::string(buf);
  };
  for (int r = 0; r < cluster.size(); ++r) {
    core::FatNode& n = cluster.node(r);
    const double cpu_denom = elapsed * n.cpu().cores();
    const double gpu_denom = elapsed * n.gpu_count();
    t.add_row({"node" + std::to_string(r),
               units::format_time(n.cpu_busy()), pct(n.cpu_busy(), cpu_denom),
               units::format_time(n.gpu_busy()), pct(n.gpu_busy(), gpu_denom),
               units::format_bytes(n.pcie_bytes())});
  }
  t.print();
}

/// 16-hex-digit FNV digest of a Writer's encoded bytes. CI diffs this line
/// between fault-free, crashed+resumed, and checkpoint-disabled runs.
std::string state_digest(const ckpt::Writer& w) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(ckpt::fnv1a64(w.bytes())));
  return buf;
}

core::JobStats run_app(const tools::Options& opt, core::Cluster& cluster,
                       const core::NodeConfig& node,
                       const core::JobConfig& cfg, Rng& rng,
                       const ckpt::CheckpointConfig* checkpoint) {
  const auto& sched = cluster.scheduler(0);
  core::JobStats stats;

  if (opt.app == "cmeans" || opt.app == "kmeans") {
    const double ai = opt.app == "cmeans"
                          ? apps::cmeans_arithmetic_intensity(opt.clusters)
                          : apps::kmeans_arithmetic_intensity(opt.clusters);
    std::printf("%s: N=%zu D=%zu M=%d iters<=%d | AI=%g -> p=%.1f%%\n",
                opt.app.c_str(), opt.points, opt.dims, opt.clusters,
                opt.iterations, ai,
                sched.workload_split(ai, false, node.gpus_per_node)
                        .cpu_fraction *
                    100.0);
    if (opt.functional) {
      auto ds = data::generate_blobs(rng, opt.points, opt.dims,
                                     opt.clusters, 10.0, 1.0);
      if (opt.app == "cmeans") {
        apps::CmeansParams p;
        p.clusters = opt.clusters;
        p.max_iterations = opt.iterations;
        p.seed = opt.seed;
        auto res = apps::cmeans_prs(cluster, ds.points, p, cfg, &stats,
                                    checkpoint);
        std::printf("converged in %d iterations, J_m = %.6g\n",
                    res.iterations, res.objective);
        ckpt::Writer w;
        ckpt::put_matrix(w, res.centers);
        w.f64(res.objective);
        std::printf("cmeans state digest: %s\n", state_digest(w).c_str());
      } else {
        apps::KmeansParams p;
        p.clusters = opt.clusters;
        p.max_iterations = opt.iterations;
        p.seed = opt.seed;
        auto res = apps::kmeans_prs(cluster, ds.points, p, cfg, &stats,
                                    checkpoint);
        std::printf("converged in %d iterations, inertia = %.6g\n",
                    res.iterations, res.inertia);
        ckpt::Writer w;
        ckpt::put_matrix(w, res.centers);
        w.f64(res.inertia);
        std::printf("kmeans state digest: %s\n", state_digest(w).c_str());
      }
    } else if (opt.app == "cmeans") {
      apps::CmeansParams p;
      p.clusters = opt.clusters;
      p.max_iterations = opt.iterations;
      stats = apps::cmeans_prs_modeled(cluster, opt.points, opt.dims, p, cfg);
    } else {
      apps::KmeansParams p;
      p.clusters = opt.clusters;
      p.max_iterations = opt.iterations;
      stats = apps::kmeans_prs_modeled(cluster, opt.points, opt.dims, p, cfg);
    }
  } else if (opt.app == "gmm") {
    const double ai =
        apps::gmm_arithmetic_intensity(opt.clusters, opt.dims);
    std::printf("gmm: N=%zu D=%zu M=%d iters<=%d | AI=%g -> p=%.1f%%\n",
                opt.points, opt.dims, opt.clusters, opt.iterations, ai,
                sched.workload_split(ai, false, node.gpus_per_node)
                        .cpu_fraction *
                    100.0);
    if (opt.functional) {
      auto ds = data::generate_blobs(rng, opt.points, opt.dims,
                                     opt.clusters, 10.0, 1.0);
      apps::GmmParams p;
      p.components = opt.clusters;
      p.max_iterations = opt.iterations;
      p.seed = opt.seed;
      auto model = apps::gmm_prs(cluster, ds.points, p, cfg, &stats,
                                 checkpoint);
      std::printf("converged in %d iterations, log-likelihood = %.6g\n",
                  model.iterations, model.log_likelihood);
      ckpt::Writer w;
      w.u64(model.weights.size());
      for (double wm : model.weights) w.f64(wm);
      ckpt::put_matrix(w, model.means);
      ckpt::put_matrix(w, model.variances);
      w.f64(model.log_likelihood);
      std::printf("gmm state digest: %s\n", state_digest(w).c_str());
    } else {
      apps::GmmParams p;
      p.components = opt.clusters;
      p.max_iterations = opt.iterations;
      stats = apps::gmm_prs_modeled(cluster, opt.points, opt.dims, p, cfg);
    }
  } else if (opt.app == "gemv") {
    const double ai = apps::gemv_arithmetic_intensity();
    std::printf("gemv: %zu x %zu | AI=%g -> p=%.1f%%\n", opt.rows, opt.cols,
                ai,
                sched.workload_split(ai, true, node.gpus_per_node)
                        .cpu_fraction *
                    100.0);
    if (opt.functional) {
      auto a = data::random_matrix(rng, opt.rows, opt.cols);
      auto x = data::random_vector(rng, opt.cols);
      auto y = apps::gemv_prs(cluster, a, x, cfg, &stats);
      std::printf("y[0] = %.6g, y[n-1] = %.6g\n", y.front(), y.back());
    } else {
      stats = apps::gemv_prs_modeled(cluster, opt.rows, opt.cols, cfg);
    }
  } else if (opt.app == "fft") {
    const double ai = linalg::fft_arithmetic_intensity(opt.cols);
    std::printf("fft batch: %zu signals x %zu samples | AI=%g -> p=%.1f%%\n",
                opt.points, opt.cols, ai,
                sched.workload_split(ai, true, node.gpus_per_node)
                        .cpu_fraction *
                    100.0);
    stats = apps::fft_batch_prs_modeled(cluster, opt.points, opt.cols, cfg);
  } else if (opt.app == "wordcount") {
    auto corpus = std::make_shared<const apps::Corpus>(
        apps::generate_corpus(rng, opt.points, 8, 5000));
    auto counts = apps::wordcount_prs(cluster, corpus, cfg, &stats);
    unsigned long long total = 0;
    for (const auto& [w, c] : counts) total += c;
    // Deterministic one-line digest of the result (CI diffs this line
    // between fault-free and fault-injected runs).
    std::printf("wordcount result: %zu lines, %zu distinct words, "
                "%llu total occurrences\n",
                opt.points, counts.size(), total);
  } else {
    throw InvalidArgument("unknown --app=" + opt.app + " (try --list)");
  }
  return stats;
}

int run(const tools::Options& opt) {
  // Size the real host pool before any kernel runs; 0 keeps the
  // PRS_HOST_THREADS / hardware_concurrency default. Either way the
  // numeric results are byte-identical (see DESIGN.md "Host execution").
  if (opt.host_threads > 0) {
    exec::ThreadPool::instance().configure(opt.host_threads);
  }
  sim::Simulator sim;
  obs::TraceRecorder tracer(sim);
  const bool observing = !opt.trace_path.empty() || !opt.metrics_path.empty();
  if (observing) sim.set_tracer(&tracer);

  core::NodeConfig node = opt.node_config();
  core::Cluster cluster(sim, opt.nodes, node);
  core::JobConfig cfg = opt.job_config();
  // One policy instance for the whole invocation: with --policy=adaptive it
  // keeps its learned per-node fractions across --repeat runs.
  auto policy = core::make_policy(opt.policy_name());
  cfg.policy = policy.get();
  Rng rng(opt.seed);

  // Fault injection: parse the spec into a plan and attach the injector to
  // the job config; run_job then takes the fault-tolerant path.
  std::unique_ptr<fault::FaultInjector> injector;
  if (!opt.fault_spec.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        sim, fault::FaultPlan::parse(opt.fault_spec), opt.fault_seed);
    cfg.faults = injector.get();
  }

  // Checkpointing: file-backed snapshots of the iterative driver's state.
  // A node_crash halts the run with the latest snapshot on disk; --resume
  // picks it up and replays only the lost iterations.
  std::unique_ptr<ckpt::FileCheckpointStore> store;
  ckpt::CheckpointConfig ckpt_cfg;
  const ckpt::CheckpointConfig* checkpoint = nullptr;
  if (!opt.checkpoint_dir.empty()) {
    store = std::make_unique<ckpt::FileCheckpointStore>(opt.checkpoint_dir);
    ckpt_cfg.store = store.get();
    ckpt_cfg.interval = opt.checkpoint_every > 0 ? opt.checkpoint_every : 1;
    ckpt_cfg.recover = opt.resume;
    ckpt_cfg.on_crash = ckpt::OnCrash::kHalt;
    ckpt_cfg.prefix = opt.app;
    ckpt_cfg.run_seed = opt.seed;
    ckpt_cfg.fault_seed = opt.fault_seed;
    checkpoint = &ckpt_cfg;
    std::printf("checkpointing every %d iteration(s) to %s%s\n",
                ckpt_cfg.interval, opt.checkpoint_dir.c_str(),
                opt.resume ? " (resuming from the latest snapshot)" : "");
  }

  for (int rep = 0; rep < opt.repeat; ++rep) {
    if (opt.repeat > 1) std::printf("\n=== run %d/%d ===\n", rep + 1, opt.repeat);
    core::JobStats stats = run_app(opt, cluster, node, cfg, rng, checkpoint);
    print_stats(stats, opt.nodes);
    if (injector != nullptr) print_fault_summary(*injector, stats);
    print_node_table(cluster, stats.elapsed);
    if (const auto* ap =
            dynamic_cast<const core::AdaptiveFeedbackPolicy*>(policy.get())) {
      std::printf("\n-- adaptive policy --\n");
      for (int r = 0; r < cluster.size(); ++r) {
        const double p = ap->learned_fraction(r);
        if (p >= 0.0) {
          std::printf("node%d learned p = %.1f%%\n", r, p * 100.0);
        } else {
          std::printf("node%d learned p = (analytic, no feedback yet)\n", r);
        }
      }
    }
    // Fresh counters per run so each summary reports that run only.
    if (rep + 1 < opt.repeat) cluster.reset_counters();
  }

  // Export failures (unwritable path, full disk) must not discard the
  // results already printed above: report to stderr and exit nonzero.
  int rc = 0;
  if (!opt.trace_path.empty()) {
    try {
      obs::export_chrome_trace(tracer, opt.trace_path);
      std::printf("\ntrace written to %s (open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  opt.trace_path.c_str());
    } catch (const prs::Error& e) {
      std::fprintf(stderr, "error: trace export failed: %s\n", e.what());
      rc = 1;
    }
  }
  if (!opt.metrics_path.empty()) {
    try {
      obs::record_pool_metrics(tracer.metrics());
      obs::export_metrics(tracer.metrics(), opt.metrics_path);
      std::printf("metrics written to %s\n", opt.metrics_path.c_str());
    } catch (const prs::Error& e) {
      std::fprintf(stderr, "error: metrics export failed: %s\n", e.what());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Options opt;
  std::string error;
  if (!tools::parse_options(argc, argv, opt, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (opt.show_help) {
    std::printf("%s", tools::usage().c_str());
    return 0;
  }
  if (opt.show_list) {
    std::printf(
        "apps: cmeans kmeans gmm gemv fft wordcount\n"
        "testbeds: delta (Xeon 5660 + C2070), bigred2 (Opteron + K20), "
        "phi (Xeon + Phi 5110P)\n");
    return 0;
  }
  try {
    return run(opt);
  } catch (const prs::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
