// prs_run — command-line driver for the PRS runtime.
//
// Runs any built-in application on a configurable simulated cluster and
// prints results plus the runtime's scheduling/utilization statistics.
//
//   prs_run --app=cmeans --nodes=4 --points=200000 --dims=100 --clusters=10
//   prs_run --app=gemv --rows=35000 --cols=10000 --gpu-only
//   prs_run --app=wordcount --lines=20000 --mode=functional
//   prs_run --app=gmm --testbed=bigred2 --gpus=1 --scheduling=dynamic
//   prs_run --app=cmeans --policy=adaptive --repeat=3
//   prs_run --list
//
// Modeled mode (default for big inputs) charges paper-scale virtual time
// without allocating the data; functional mode computes real results.
//
// With --server=PATH the binary turns into a thin client for a running
// prs_serve daemon: --submit ships the same job over the line protocol and
// prints the very same result lines (the job executes through the shared
// svc::run_job_spec dispatch, so digests are byte-identical).
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/store.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/pool_metrics.hpp"
#include "obs/trace.hpp"
#include "numa/topology.hpp"
#include "simd/dispatch.hpp"
#include "svc/client.hpp"
#include "svc/launcher.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"
#include "svc/stats_io.hpp"
#include "tools/cli_options.hpp"

namespace {

using namespace prs;

void print_fault_summary(const fault::FaultInjector& inj,
                         const core::JobStats& s) {
  const auto& st = inj.stats();
  std::printf("\n-- fault injection --\n");
  std::printf("plan                %s (seed %llu)\n",
              inj.plan().summary().c_str(),
              static_cast<unsigned long long>(inj.seed()));
  std::printf("injected            %llu hangs | %llu slowdowns | "
              "%llu task errors | %llu drops | %llu delays | %llu dups\n",
              static_cast<unsigned long long>(st.hangs),
              static_cast<unsigned long long>(st.slowdowns),
              static_cast<unsigned long long>(st.task_errors),
              static_cast<unsigned long long>(st.drops),
              static_cast<unsigned long long>(st.delays),
              static_cast<unsigned long long>(st.duplicates));
  std::printf("tolerated           %llu retries | %llu speculations "
              "(%llu won) | %llu duplicates discarded | %llu retransmits\n",
              static_cast<unsigned long long>(s.task_retries),
              static_cast<unsigned long long>(s.speculations),
              static_cast<unsigned long long>(s.speculative_wins),
              static_cast<unsigned long long>(s.double_completions),
              static_cast<unsigned long long>(s.retransmits));
  std::printf("degradation         %d node(s) blacklisted, %d job attempt(s)\n",
              s.blacklisted_nodes, s.job_attempts);
}

/// Per-node utilization: busy time and link traffic from each FatNode's
/// counters, plus utilization relative to the job's virtual span.
void print_node_table(core::Cluster& cluster, double elapsed) {
  std::printf("\n-- per-node utilization --\n");
  TextTable t({"node", "cpu busy", "cpu util", "gpu busy", "gpu util",
               "pcie traffic"});
  auto pct = [](double busy, double denom) {
    if (denom <= 0.0) return std::string("-");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", busy / denom * 100.0);
    return std::string(buf);
  };
  for (int r = 0; r < cluster.size(); ++r) {
    core::FatNode& n = cluster.node(r);
    const double cpu_denom = elapsed * n.cpu().cores();
    const double gpu_denom = elapsed * n.gpu_count();
    t.add_row({"node" + std::to_string(r),
               units::format_time(n.cpu_busy()), pct(n.cpu_busy(), cpu_denom),
               units::format_time(n.gpu_busy()), pct(n.gpu_busy(), gpu_denom),
               units::format_bytes(n.pcie_bytes())});
  }
  t.print();
}

int run(const tools::Options& opt) {
  // Size the real host pool before any kernel runs; 0 keeps the
  // PRS_HOST_THREADS / hardware_concurrency default. Either way the
  // numeric results are byte-identical (see DESIGN.md "Host execution").
  if (opt.host_threads > 0) {
    exec::ThreadPool::instance().configure(opt.host_threads);
  }
  // SIMD level before any kernel runs. --simd overrides $PRS_SIMD; an
  // unsupported request throws (prs::Error handler in main). The status
  // line only appears when a flag was given, keeping default stdout
  // byte-identical to pre-SIMD builds.
  if (!opt.simd.empty()) simd::set_level(opt.simd);
  if (opt.simd_fma) simd::set_fma_allowed(true);
  if (!opt.simd.empty() || opt.simd_fma) {
    std::printf("simd level          %s%s\n",
                simd::level_name(simd::active_level()),
                simd::fma_allowed() ? " (+fma)" : "");
  }
  // NUMA mode before any kernel runs. --numa overrides $PRS_NUMA; like
  // the simd status line, the topology line only appears when the flag
  // was given, keeping default stdout byte-identical.
  if (!opt.numa.empty()) {
    numa::set_enabled(opt.numa == "on");
    std::printf("numa                %s | %s\n", opt.numa.c_str(),
                numa::active_topology().summary().c_str());
  }
  sim::Simulator sim;
  obs::TraceRecorder tracer(sim);
  const bool observing = !opt.trace_path.empty() || !opt.metrics_path.empty();
  if (observing) sim.set_tracer(&tracer);

  const svc::JobSpec spec = tools::to_job_spec(opt);
  spec.validate();
  core::NodeConfig node = spec.node_config();
  core::Cluster cluster(sim, spec.nodes, node);
  core::JobConfig cfg = spec.job_config();
  // --graph-dump is CLI-local (a file path on this host), not wire state.
  cfg.graph_dump_path = opt.graph_dump;
  // One policy instance for the whole invocation: with --policy=adaptive it
  // keeps its learned per-node fractions across --repeat runs.
  auto policy = core::make_policy(spec.policy);
  cfg.policy = policy.get();
  // Feed the measured host vector throughput into the Eq (8) split: the
  // roofline's calibrated Fc describes the scalar host kernels, so a
  // vectorized host deserves a proportionally larger CPU share.
  if (opt.simd_calibrate) {
    cfg.host_simd_scale = simd::measure_host_speedup();
    std::printf("simd calibration    host speedup x%.2f at level %s "
                "(scales Fc in the Eq (8) split)\n",
                cfg.host_simd_scale, simd::level_name(simd::active_level()));
  }
  Rng rng(spec.seed);

  // Fault injection: parse the spec into a plan and attach the injector to
  // the job config; run_job then takes the fault-tolerant path.
  std::unique_ptr<fault::FaultInjector> injector;
  if (!spec.fault_spec.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        sim, fault::FaultPlan::parse(spec.fault_spec), spec.fault_seed);
    cfg.faults = injector.get();
  }

  // Checkpointing: file-backed snapshots of the iterative driver's state.
  // A node_crash halts the run with the latest snapshot on disk; --resume
  // picks it up and replays only the lost iterations.
  std::unique_ptr<ckpt::FileCheckpointStore> store;
  ckpt::CheckpointConfig ckpt_cfg;
  const ckpt::CheckpointConfig* checkpoint = nullptr;
  if (!spec.checkpoint_dir.empty()) {
    store = std::make_unique<ckpt::FileCheckpointStore>(spec.checkpoint_dir);
    ckpt_cfg.store = store.get();
    ckpt_cfg.interval = spec.checkpoint_every > 0 ? spec.checkpoint_every : 1;
    ckpt_cfg.recover = spec.resume;
    ckpt_cfg.on_crash = ckpt::OnCrash::kHalt;
    ckpt_cfg.prefix = spec.app;
    ckpt_cfg.run_seed = spec.seed;
    ckpt_cfg.fault_seed = spec.fault_seed;
    checkpoint = &ckpt_cfg;
    std::printf("checkpointing every %d iteration(s) to %s%s\n",
                ckpt_cfg.interval, spec.checkpoint_dir.c_str(),
                spec.resume ? " (resuming from the latest snapshot)" : "");
  }

  for (int rep = 0; rep < opt.repeat; ++rep) {
    if (opt.repeat > 1) std::printf("\n=== run %d/%d ===\n", rep + 1, opt.repeat);
    // The same dispatch the job server uses — one code path, one digest.
    svc::LaunchOutcome out =
        svc::run_job_spec(spec, cluster, node, cfg, rng, checkpoint);
    for (const std::string& line : out.lines) std::printf("%s\n", line.c_str());
    const exec::PoolStats pool = exec::ThreadPool::instance().stats();
    std::fputs(svc::job_stats_text(out.stats, spec.nodes, &pool).c_str(),
               stdout);
    if (injector != nullptr) print_fault_summary(*injector, out.stats);
    print_node_table(cluster, out.stats.elapsed);
    if (const auto* ap =
            dynamic_cast<const core::AdaptiveFeedbackPolicy*>(policy.get())) {
      std::printf("\n-- adaptive policy --\n");
      for (int r = 0; r < cluster.size(); ++r) {
        const double p = ap->learned_fraction(r);
        if (p >= 0.0) {
          std::printf("node%d learned p = %.1f%%\n", r, p * 100.0);
        } else {
          std::printf("node%d learned p = (analytic, no feedback yet)\n", r);
        }
      }
    }
    // Fresh counters per run so each summary reports that run only.
    if (rep + 1 < opt.repeat) cluster.reset_counters();
  }

  // Export failures (unwritable path, full disk) must not discard the
  // results already printed above: report to stderr and exit nonzero.
  int rc = 0;
  if (!opt.trace_path.empty()) {
    try {
      obs::export_chrome_trace(tracer, opt.trace_path);
      std::printf("\ntrace written to %s (open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  opt.trace_path.c_str());
    } catch (const prs::Error& e) {
      std::fprintf(stderr, "error: trace export failed: %s\n", e.what());
      rc = 1;
    }
  }
  if (!opt.metrics_path.empty()) {
    try {
      obs::record_pool_metrics(tracer.metrics());
      obs::export_metrics(tracer.metrics(), opt.metrics_path);
      std::printf("metrics written to %s\n", opt.metrics_path.c_str());
    } catch (const prs::Error& e) {
      std::fprintf(stderr, "error: metrics export failed: %s\n", e.what());
      rc = 1;
    }
  }
  return rc;
}

/// Prints one protocol response; returns 0 on an OK header, 1 otherwise
/// (ERR or RETRY-AFTER that survived the retry budget).
int print_response(const std::string& response) {
  const bool ok = response.rfind("OK", 0) == 0;
  std::fputs(response.c_str(), ok ? stdout : stderr);
  return ok ? 0 : 1;
}

// Client exit codes: 0 success, 1 server-side error / failed job,
// 2 usage, 3 server unreachable (distinct so scripts can tell "the job
// failed" from "the daemon is not there").
constexpr int kExitUnreachable = 3;

svc::RetryPolicy retry_policy(const tools::Options& opt) {
  svc::RetryPolicy policy;
  policy.retries = opt.server_retries;
  policy.base_ms = opt.retry_base_ms;
  policy.seed = opt.retry_seed;
  policy.timeout_ms = opt.server_timeout_ms;
  return policy;
}

/// Client mode: one request (or submit+wait) against a running prs_serve,
/// riding out restarts and shedding within the --server-retries budget.
int client_run(const tools::Options& opt) {
  const svc::RetryPolicy policy = retry_policy(opt);
  svc::ResilientClient client(opt.server_socket, policy);
  if (policy.retries > 0) {
    // Announce the deterministic backoff schedule once, then narrate each
    // retry as it happens — silence while sleeping looks like a hang.
    std::fprintf(stderr, "retry schedule (on failure): %s\n",
                 svc::backoff_schedule(policy).c_str());
  }
  client.set_retry_observer(
      [](int attempt, int sleep_ms, const std::string& why) {
        std::fprintf(stderr, "retry %d in %dms: %s\n", attempt, sleep_ms,
                     why.c_str());
      });
  if (opt.submit) {
    const svc::JobSpec spec = tools::to_job_spec(opt);
    std::string line = "SUBMIT tenant=" + opt.tenant;
    if (!opt.dedup.empty()) line += " dedup=" + opt.dedup;
    const std::string tokens = spec.to_tokens();
    if (!tokens.empty()) line += " " + tokens;
    // Without a dedup key a SUBMIT must not be replayed once it may have
    // reached the server — a crash between send and reply would otherwise
    // admit the job twice.
    const std::string submitted =
        client.request(line, /*idempotent=*/!opt.dedup.empty());
    if (print_response(submitted) != 0) return 1;
    const long id = svc::header_field(submitted, "id", -1);
    if (id < 0) {
      std::fprintf(stderr, "error: server response carried no job id\n");
      return 1;
    }
    const std::string done = client.wait_job(static_cast<int>(id));
    int rc = print_response(done);
    if (rc == 0 && done.find(" state=DONE") == std::string::npos) rc = 1;
    return rc;
  }
  if (opt.job_status >= 0) {
    return print_response(
        client.request("STATUS " + std::to_string(opt.job_status)));
  }
  if (opt.wait_job >= 0) {
    return print_response(client.wait_job(opt.wait_job));
  }
  if (opt.cancel_job >= 0) {
    return print_response(
        client.request("CANCEL " + std::to_string(opt.cancel_job)));
  }
  if (opt.server_stats) return print_response(client.request("STATS"));
  if (opt.drain_server) return print_response(client.request("DRAIN"));
  if (opt.shutdown_server) return print_response(client.request("SHUTDOWN"));
  std::fprintf(stderr, "error: no client action\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Options opt;
  std::string error;
  if (!tools::parse_options(argc, argv, opt, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (opt.show_help) {
    std::printf("%s", tools::usage().c_str());
    return 0;
  }
  if (opt.show_list) {
    std::printf(
        "apps: cmeans kmeans gmm gemv dgemm fft wordcount stencil\n"
        "testbeds: delta (Xeon 5660 + C2070), bigred2 (Opteron + K20), "
        "phi (Xeon + Phi 5110P)\n");
    return 0;
  }
  try {
    if (!opt.server_socket.empty()) return client_run(opt);
    return run(opt);
  } catch (const svc::ConnectFailed& e) {
    std::fprintf(stderr,
                 "error: server not running at %s? (%s)\n"
                 "start it with: prs_serve --socket=%s\n",
                 opt.server_socket.c_str(), e.what(),
                 opt.server_socket.c_str());
    return kExitUnreachable;
  } catch (const prs::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
