// Command-line option parsing for the prs_run driver.
//
// Deliberately dependency-free: --key=value / --flag syntax, validated
// against the option table below. Exposed as a header so the parser is
// unit-testable (tests/cli_test.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "core/cluster.hpp"
#include "core/job.hpp"
#include "simdev/device_spec.hpp"

namespace prs::tools {

struct Options {
  std::string app = "cmeans";
  std::string testbed = "delta";     // delta | bigred2 | phi
  std::string scheduling = "static"; // static | dynamic (legacy spelling)
  std::string policy;                // static | dynamic | adaptive
  int nodes = 4;
  int gpus = 1;
  std::size_t points = 200000;
  std::size_t dims = 100;
  int clusters = 10;
  int iterations = 10;
  std::size_t rows = 35000;
  std::size_t cols = 10000;
  bool functional = false;   // default: modeled (paper-scale safe)
  bool gpu_only = false;
  bool cpu_only = false;
  double cpu_fraction = -1.0;
  std::uint64_t seed = 42;
  int repeat = 1;            // run the job N times (counters reset between)
  int host_threads = 0;      // real host threads for map kernels; 0 = auto
                             // (PRS_HOST_THREADS / hardware_concurrency)
  std::string fault_spec;    // --fault-spec=...: fault clauses (fault_plan.hpp)
  std::uint64_t fault_seed = 1;  // seed of the injector's RNG streams
  int checkpoint_every = 0;  // snapshot interval in iterations; 0 = off
  std::string checkpoint_dir;  // --checkpoint-dir=DIR: snapshot directory
  bool resume = false;       // resume from the latest snapshot in the dir
  std::string trace_path;    // --trace=FILE: Chrome trace-event JSON
  std::string metrics_path;  // --metrics=FILE: counters/histograms dump
  bool show_help = false;
  bool show_list = false;

  /// Node hardware from the --testbed/--gpus flags.
  core::NodeConfig node_config() const {
    core::NodeConfig cfg;
    if (testbed == "bigred2") {
      cfg.cpu = simdev::bigred2_cpu();
      cfg.gpu = simdev::bigred2_k20();
    } else if (testbed == "phi") {
      cfg.gpu = simdev::xeon_phi_5110p();
    }
    cfg.gpus_per_node = gpus;
    return cfg;
  }

  /// Effective level-2 policy name: --policy wins over legacy --scheduling.
  std::string policy_name() const {
    return policy.empty() ? scheduling : policy;
  }

  /// Job configuration from the mode/backend/scheduling flags. The caller
  /// owns the policy instance (core::make_policy(policy_name())) and sets
  /// JobConfig::policy so it persists across --repeat runs.
  core::JobConfig job_config() const {
    core::JobConfig cfg;
    cfg.mode = functional ? core::ExecutionMode::kFunctional
                          : core::ExecutionMode::kModeled;
    cfg.scheduling = policy_name() == "dynamic"
                         ? core::SchedulingMode::kDynamic
                         : core::SchedulingMode::kStatic;
    cfg.use_cpu = !gpu_only;
    cfg.use_gpu = !cpu_only;
    cfg.cpu_fraction_override = cpu_fraction;
    return cfg;
  }
};

/// Parses argv into `out`. Returns false (and sets `error`) on unknown
/// options, malformed values, or inconsistent combinations.
bool parse_options(int argc, char** argv, Options& out, std::string& error);

/// The --help text.
std::string usage();

}  // namespace prs::tools
