// Command-line option parsing for the prs_run driver.
//
// Deliberately dependency-free: --key=value / --flag syntax, validated
// against the option table below. Exposed as a header so the parser is
// unit-testable (tests/cli_test.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "core/cluster.hpp"
#include "core/job.hpp"
#include "simdev/device_spec.hpp"
#include "svc/job_spec.hpp"

namespace prs::tools {

struct Options {
  std::string app = "cmeans";
  std::string testbed = "delta";     // delta | bigred2 | phi
  std::string scheduling = "static"; // static | dynamic (legacy spelling)
  std::string policy;                // static | dynamic | adaptive
  int nodes = 4;
  int gpus = 1;
  std::size_t points = 200000;
  std::size_t dims = 100;
  int clusters = 10;
  int iterations = 10;
  std::size_t rows = 35000;
  std::size_t cols = 10000;
  bool functional = false;   // default: modeled (paper-scale safe)
  bool gpu_only = false;
  bool cpu_only = false;
  double cpu_fraction = -1.0;
  std::uint64_t seed = 42;
  std::string engine;        // stages | graph; empty = stages, unless
                             // --graph-dump implies graph
  int pipeline_depth = 1;    // graph engine: iterations in flight
  std::string graph_dump;    // --graph-dump=FILE: Graphviz DOT of the job
  int repeat = 1;            // run the job N times (counters reset between)
  int host_threads = 0;      // real host threads for map kernels; 0 = auto
                             // (PRS_HOST_THREADS / hardware_concurrency)
  std::string simd;          // --simd=scalar|avx2|avx512|auto; empty =
                             // $PRS_SIMD, else auto-detect
  bool simd_fma = false;     // --simd-fma: allow fused/reassociated kernels
                             // (waives cross-level bit-identity, ULP-bounded)
  bool simd_calibrate = false;  // --simd-calibrate: measure the host vector
                                // speedup and feed it into the Eq (8) split
  std::string numa;          // --numa=on|off: NUMA-aware host execution
                             // (pinning, socket-local steals, per-lane
                             // shuffle stores); empty = $PRS_NUMA, else off
  std::string fault_spec;    // --fault-spec=...: fault clauses (fault_plan.hpp)
  std::uint64_t fault_seed = 1;  // seed of the injector's RNG streams
  int checkpoint_every = 0;  // snapshot interval in iterations; 0 = off
  std::string checkpoint_dir;  // --checkpoint-dir=DIR: snapshot directory
  bool resume = false;       // resume from the latest snapshot in the dir
  std::string trace_path;    // --trace=FILE: Chrome trace-event JSON
  std::string metrics_path;  // --metrics=FILE: counters/histograms dump
  bool show_help = false;
  bool show_list = false;

  // Client mode against a running prs_serve (see DESIGN.md "Service
  // layer"). --server selects the socket; exactly one action below.
  std::string server_socket;   // --server=PATH
  std::string tenant = "default";  // --tenant=NAME (submit identity)
  bool submit = false;         // --submit: send job, wait, print results
  int job_status = -1;         // --job-status=ID
  int wait_job = -1;           // --wait-job=ID
  int cancel_job = -1;         // --cancel-job=ID
  bool server_stats = false;   // --server-stats: dump svc.* metrics JSON
  bool drain_server = false;   // --drain-server
  bool shutdown_server = false;  // --shutdown-server
  std::uint64_t gpu_mem_bytes = 0;  // --gpu-mem=BYTES per-vGPU request

  // Client resilience (see DESIGN.md "Durability & recovery").
  int server_retries = 0;      // --server-retries=N: reconnect/backoff budget
  int retry_base_ms = 50;      // --retry-base-ms=MS: first backoff sleep
  int server_timeout_ms = 0;   // --server-timeout-ms=MS: per-request deadline
  std::uint64_t retry_seed = 1;  // --retry-seed=S: backoff jitter stream
  std::string dedup;           // --dedup=KEY: idempotent submit key

  /// Node hardware from the --testbed/--gpus flags.
  core::NodeConfig node_config() const {
    core::NodeConfig cfg;
    if (testbed == "bigred2") {
      cfg.cpu = simdev::bigred2_cpu();
      cfg.gpu = simdev::bigred2_k20();
    } else if (testbed == "phi") {
      cfg.gpu = simdev::xeon_phi_5110p();
    }
    cfg.gpus_per_node = gpus;
    return cfg;
  }

  /// Effective level-2 policy name: --policy wins over legacy --scheduling.
  std::string policy_name() const {
    return policy.empty() ? scheduling : policy;
  }

  /// Effective engine name: --graph-dump implies the graph engine when
  /// --engine is not given explicitly.
  std::string engine_name() const {
    if (!engine.empty()) return engine;
    return graph_dump.empty() ? "stages" : "graph";
  }

  /// Job configuration from the mode/backend/scheduling flags. The caller
  /// owns the policy instance (core::make_policy(policy_name())) and sets
  /// JobConfig::policy so it persists across --repeat runs.
  core::JobConfig job_config() const {
    core::JobConfig cfg;
    cfg.mode = functional ? core::ExecutionMode::kFunctional
                          : core::ExecutionMode::kModeled;
    cfg.scheduling = policy_name() == "dynamic"
                         ? core::SchedulingMode::kDynamic
                         : core::SchedulingMode::kStatic;
    cfg.use_cpu = !gpu_only;
    cfg.use_gpu = !cpu_only;
    cfg.cpu_fraction_override = cpu_fraction;
    cfg.engine = engine_name() == "graph" ? core::ExecEngine::kGraph
                                          : core::ExecEngine::kStages;
    cfg.pipeline_depth = pipeline_depth;
    cfg.graph_dump_path = graph_dump;
    return cfg;
  }
};

/// Parses argv into `out`. Returns false (and sets `error`) on unknown
/// options, malformed values, or inconsistent combinations. Unknown flags
/// are always rejected with a message naming the flag — even when --help
/// or --list appears earlier on the command line.
bool parse_options(int argc, char** argv, Options& out, std::string& error);

/// Throwing flavour: returns the parsed options or throws
/// prs::InvalidArgument with the same message (naming the offending flag).
Options parse_options_or_throw(int argc, char** argv);

/// The submittable JobSpec equivalent of single-shot options (the fields
/// prs_run --submit sends over the wire).
svc::JobSpec to_job_spec(const Options& opt);

/// The --help text.
std::string usage();

}  // namespace prs::tools
