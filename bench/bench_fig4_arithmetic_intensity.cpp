// Reproduces paper Figure 4: "the arithmetic intensity of different
// applications" — the spectrum from bandwidth-bound (log analysis, word
// count, GEMV) through moderate (FFT, K-means, C-means) to compute-bound
// (GMM, DGEMM), annotated with the Eq (8) regime and the resulting CPU
// share on the Delta node.
#include <cmath>
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/stencil.hpp"
#include "linalg/fft.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "bench_util.hpp"
#include "roofline/analytic_scheduler.hpp"
#include "simdev/device_spec.hpp"

int main() {
  using namespace prs;
  bench::print_header(
      "Figure 4 — arithmetic intensity spectrum of SPMD applications",
      "AI conventions follow the paper (Table 5). CPU share p from Eq (8) "
      "on the Delta node; staged = single-pass PCI-E staging.");

  const roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                          simdev::delta_c2070());

  struct App {
    const char* name;
    double ai;
    bool staged;
    const char* ai_formula;
  };
  const App apps[] = {
      {"log analysis / word count", 0.125, true, "O(1) ~ 1/8"},
      {"GEMV (SpMV band)", apps::gemv_arithmetic_intensity(), true, "2"},
      {"PDE stencil (Jacobi)", apps::stencil_arithmetic_intensity(), false,
       "O(1) ~ 2.5"},
      {"FFT (N=1024)", linalg::fft_arithmetic_intensity(1024), true,
       "5*log2(N)"},
      {"K-means (M=10)", apps::kmeans_arithmetic_intensity(10), false,
       "3*M"},
      {"C-means (M=10)", apps::cmeans_arithmetic_intensity(10), false,
       "5*M"},
      {"C-means (M=100)", apps::cmeans_arithmetic_intensity(100), false,
       "5*M"},
      {"GMM (M=10, D=60)", apps::gmm_arithmetic_intensity(10, 60), false,
       "11*M*D"},
      {"DGEMM (N=4096)", 4096.0 / 3.0, false, "O(N)"},
  };

  TextTable t({"application", "AI [flops/byte]", "formula", "Eq (8) regime",
               "CPU share p"});
  for (const auto& a : apps) {
    const auto split = sched.workload_split(a.ai, a.staged);
    const char* regime =
        split.regime == roofline::SplitRegime::kBelowCpuRidge
            ? "A < Acr (bandwidth-bound)"
            : (split.regime == roofline::SplitRegime::kBetweenRidges
                   ? "Acr <= A < Agr"
                   : "A >= Agr (compute-bound)");
    char p[16];
    std::snprintf(p, sizeof(p), "%.1f%%", split.cpu_fraction * 100.0);
    t.add_row({a.name, TextTable::num(a.ai, 4), a.ai_formula, regime, p});
  }
  t.print();

  std::printf(
      "\nShape checks (paper §I + Fig 4): word count / GEMV sit left of the "
      "CPU ridge (CPU-favoured);\nclustering apps sit right of both ridges "
      "(GPU-favoured); the spectrum spans ~5 orders of magnitude.\n");
  return 0;
}
