// Ablation: real multicore host execution (exec::ThreadPool).
//
// The paper's CPU daemon runs "one pthread per CPU core"; PRS adds fixed
// chunking + fixed-order combination on top so results are byte-identical
// for any thread count. This bench measures what that buys and what it
// costs, per kernel, on the actual host:
//
//   * wall-clock speedup vs. host threads for the C-means map sweep
//     (Eq 13 weights + Eq 14 partial sums) and the blocked GEMM;
//   * the same C-means sweep on raw std::threads with a static split
//     (the paper's daemon structure, no pool) as the price-of-determinism
//     reference;
//   * a byte-identity check of every kernel result across all counts.
//
// Wall-clock numbers vary run to run (this is the one bench measuring the
// real machine, not the virtual clock); the identity verdict must not.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "apps/cmeans.hpp"
#include "baselines/cmeans_baselines.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/blas.hpp"

namespace {

using namespace prs;

/// FNV-1a over raw double bytes: byte-identity, not approximate equality.
std::uint64_t digest(std::uint64_t h, const double* p, std::size_t n) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

/// Best-of-3 wall-clock seconds (first run also warms the pool's workers).
template <typename F>
double best_seconds(F&& f) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

std::string cell(double seconds, double serial_seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.2f ms (%4.2fx)", seconds * 1e3,
                seconds > 0.0 ? serial_seconds / seconds : 0.0);
  return buf;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — host thread pool: wall-clock speedup per kernel",
      "Real host time, not virtual time. Expect >= 3x at 8 cores for the "
      "C-means map and blocked GEMM; results are byte-identical at every "
      "thread count.");

  auto& pool = exec::ThreadPool::instance();
  const int max_threads = exec::ThreadPool::default_threads();
  std::vector<int> counts;
  for (int t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);

  // C-means map workload: paper-shaped (many points, modest D/M).
  Rng rng(42);
  auto ds = data::generate_blobs(rng, 20000, 16, 8, 10.0, 1.0);
  linalg::MatrixD centers(8, ds.points.cols());
  for (std::size_t r = 0; r < centers.rows(); ++r) {
    for (std::size_t c = 0; c < centers.cols(); ++c) {
      centers(r, c) = ds.points(r, c);
    }
  }
  const double fuzziness = 2.0;

  // Blocked GEMM workload: square, several blocks per dimension.
  auto a = data::random_matrix(rng, 384, 384);
  auto b = data::random_matrix(rng, 384, 384);

  double cmeans_serial_s = 0.0;
  double gemm_serial_s = 0.0;
  std::uint64_t cmeans_ref = 0;
  std::uint64_t gemm_ref = 0;
  bool identical = true;

  TextTable t({"threads", "cmeans map (pool)", "cmeans map (raw threads)",
               "blocked gemm (pool)"});
  for (const int n : counts) {
    pool.configure(n);
    std::vector<std::vector<double>> partials;
    const double cm = best_seconds([&] {
      apps::cmeans_accumulate(ds.points, centers, fuzziness, 0,
                              ds.points.rows(), partials);
    });
    std::uint64_t cd = 1469598103934665603ULL;
    for (const auto& p : partials) cd = digest(cd, p.data(), p.size());

    linalg::MatrixD c(a.rows(), b.cols(), 0.0);
    const double gm = best_seconds([&] {
      linalg::gemm_blocked(1.0, a, b, 0.0, c);
    });
    const std::uint64_t gd =
        digest(1469598103934665603ULL, &c(0, 0), c.size());

    // Raw static-split std::threads: pool sized to 1 so each raw thread
    // runs its slice serially (see cmeans_raw_thread_map).
    pool.configure(1);
    const double raw = best_seconds([&] {
      baselines::cmeans_raw_thread_map(ds.points, centers, fuzziness, n);
    });

    if (n == 1) {
      cmeans_serial_s = cm;
      gemm_serial_s = gm;
      cmeans_ref = cd;
      gemm_ref = gd;
    }
    identical = identical && cd == cmeans_ref && gd == gemm_ref;
    t.add_row({std::to_string(n), cell(cm, cmeans_serial_s),
               cell(raw, cmeans_serial_s), cell(gm, gemm_serial_s)});
  }
  t.print();

  const exec::PoolStats stats = pool.stats();
  std::printf("\npool totals: %llu regions, %llu chunks (%llu stolen), "
              "mean occupancy %.0f%%\n",
              static_cast<unsigned long long>(stats.jobs),
              static_cast<unsigned long long>(stats.chunks),
              static_cast<unsigned long long>(stats.stolen_chunks),
              stats.occupancy() * 100.0);
  std::printf("byte-identity across thread counts: %s\n",
              identical ? "PASS" : "FAIL");
  pool.configure(0);  // restore the default for anything run after us
  return identical ? 0 : 1;
}
