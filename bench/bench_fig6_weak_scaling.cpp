// Reproduces paper Figure 6: weak scalability of GEMV, C-means and GMM on
// up to 8 Delta nodes — Gflops per node, GPU-only (red bars) vs GPU+CPU
// (blue bars), with the per-node workload held constant:
//   (1) GEMV    M=35000, N=10000 per node
//   (2) C-means N=1,000,000 per node, D=100, M=10
//   (3) GMM     N=100,000 per node, D=60, M=100
//
// Shape to reproduce (§IV.B): flat Gflops/node (linear weak scaling);
// GPU+CPU over GPU-only ~ +1011.8% for GEMV, +11.56% for C-means, +15.4%
// for GMM (paper summary); C-means loses ~5.5% per-node throughput at 8
// nodes to the global reduction; GMM peak is well above C-means.
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "bench_util.hpp"
#include "core/cluster.hpp"

namespace {

using namespace prs;

constexpr int kNodeCounts[] = {1, 2, 4, 8};

core::JobConfig fig6_cfg(bool with_cpu) {
  core::JobConfig cfg;
  cfg.use_cpu = with_cpu;
  cfg.use_gpu = true;
  cfg.charge_job_startup = false;  // steady-state per-iteration throughput
  return cfg;
}

double gflops_per_node(const core::JobStats& s, int nodes) {
  return s.total_flops() / s.elapsed / static_cast<double>(nodes) / 1e9;
}

double run_gemv(int nodes, bool with_cpu) {
  sim::Simulator sim;
  core::Cluster cluster(sim, nodes, core::NodeConfig{});
  auto stats = apps::gemv_prs_modeled(
      cluster, 35000ull * static_cast<std::size_t>(nodes), 10000,
      fig6_cfg(with_cpu));
  return gflops_per_node(stats, nodes);
}

double run_cmeans(int nodes, bool with_cpu) {
  sim::Simulator sim;
  core::Cluster cluster(sim, nodes, core::NodeConfig{});
  apps::CmeansParams p;
  p.clusters = 10;
  p.max_iterations = 10;
  auto stats = apps::cmeans_prs_modeled(
      cluster, 1000000ull * static_cast<std::size_t>(nodes), 100, p,
      fig6_cfg(with_cpu));
  return gflops_per_node(stats, nodes);
}

double run_gmm(int nodes, bool with_cpu) {
  sim::Simulator sim;
  core::Cluster cluster(sim, nodes, core::NodeConfig{});
  apps::GmmParams p;
  p.components = 100;
  p.max_iterations = 10;
  auto stats = apps::gmm_prs_modeled(
      cluster, 100000ull * static_cast<std::size_t>(nodes), 60, p,
      fig6_cfg(with_cpu));
  return gflops_per_node(stats, nodes);
}

template <typename RunFn>
void report(const char* app, const char* workload, double paper_speedup,
            RunFn run) {
  std::printf("\n-- %s (%s) --\n", app, workload);
  TextTable t({"nodes", "GPU only [Gflops/node]", "GPU+CPU [Gflops/node]",
               "GPU+CPU / GPU"});
  double first_gpu = 0.0, last_gpu = 0.0, speedup8 = 0.0;
  for (int nodes : kNodeCounts) {
    const double gpu = run(nodes, false);
    const double both = run(nodes, true);
    if (nodes == 1) first_gpu = gpu;
    last_gpu = gpu;
    speedup8 = both / gpu;
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%+.1f%%", (both / gpu - 1) * 100);
    t.add_row({std::to_string(nodes), TextTable::num(gpu, 4),
               TextTable::num(both, 4), ratio});
  }
  t.print();
  std::printf(
      "weak-scaling retention 1->8 nodes (GPU only): %.1f%%;  "
      "co-processing gain at 8 nodes: %+.1f%% (paper: %+.1f%%)\n",
      last_gpu / first_gpu * 100.0, (speedup8 - 1.0) * 100.0, paper_speedup);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6 — weak scalability on Delta (Gflops per node)",
      "Red bars = GPU only, blue bars = GPU+CPU in the paper. Steady-state "
      "modeled runs; per-node workload constant.");

  report("GEMV", "M=35000, N=10000 per node", 1011.8, run_gemv);
  report("C-means", "N=1M per node, D=100, M=10", 11.56, run_cmeans);
  report("GMM", "N=100k per node, D=60, M=100", 15.4, run_gmm);

  std::printf(
      "\nShape checks: flat Gflops/node for all three apps (linear weak "
      "scaling);\nGEMV gains ~10x from co-processing (PCI-E-bound on GPU); "
      "C-means/GMM gain ~11-15%%;\nC-means drops a few %% at 8 nodes from "
      "the global reduction; GMM peak >> C-means peak.\n");
  return 0;
}
