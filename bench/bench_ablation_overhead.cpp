// Ablation: where does PRS time go? — the per-phase decomposition behind
// Table 3's "our PRS introduce some overhead during the computation as
// compared with MPI" and §IV's GEMV remark that "data staging overhead
// between GPU and CPU cost more than 90% of its overall overhead".
//
// For each app we report the critical-path share of every pipeline stage
// (§III.A.2): startup, map (device compute + intermediate D2H), shuffle,
// reduce, gather.
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/gemv.hpp"
#include "apps/wordcount.hpp"
#include "bench_util.hpp"
#include "core/cluster.hpp"

namespace {

using namespace prs;

void report(const char* name, const core::JobStats& s, int iterations) {
  const double total = s.startup_time + s.map_time + s.shuffle_time +
                       s.reduce_time + s.gather_time;
  auto pct = [&](double x) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%7.3f ms (%4.1f%%)", x / iterations * 1e3,
                  x / total * 100.0);
    return std::string(buf);
  };
  TextTable t({"phase", name});
  t.add_row({"startup", pct(s.startup_time)});
  t.add_row({"map (+D2H)", pct(s.map_time)});
  t.add_row({"shuffle", pct(s.shuffle_time)});
  t.add_row({"reduce", pct(s.reduce_time)});
  t.add_row({"gather", pct(s.gather_time)});
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — PRS time decomposition per pipeline stage (per iteration)",
      "4 Delta nodes, steady state. Critical path = slowest node per "
      "stage.");

  {
    sim::Simulator sim;
    core::Cluster cluster(sim, 4, core::NodeConfig{});
    apps::CmeansParams p;
    p.clusters = 10;
    p.max_iterations = 10;
    core::JobConfig cfg;
    cfg.charge_job_startup = false;
    auto s = apps::cmeans_prs_modeled(cluster, 800000, 100, p, cfg);
    report("C-means 800k x 100 (10 iters)", s, 10);
  }
  {
    sim::Simulator sim;
    core::Cluster cluster(sim, 4, core::NodeConfig{});
    core::JobConfig cfg;
    cfg.charge_job_startup = false;
    auto s = apps::gemv_prs_modeled(cluster, 140000, 10000, cfg);
    report("GEMV 140000 x 10000 (single pass)", s, 1);
  }
  {
    Rng rng(1);
    auto corpus = std::make_shared<const apps::Corpus>(
        apps::generate_corpus(rng, 20000, 8, 5000));
    sim::Simulator sim;
    core::Cluster cluster(sim, 4, core::NodeConfig{});
    core::JobConfig cfg;
    cfg.charge_job_startup = false;
    core::JobStats s;
    (void)apps::wordcount_prs(cluster, corpus, cfg, &s);
    report("word count 20k lines, 5k vocabulary", s, 1);
  }

  std::printf(
      "Shape checks: compute-bound C-means spends nearly all time in the "
      "map stage; word count's\nlarge key space shifts weight into "
      "shuffle+gather; startup amortizes to ~0 in steady state.\n");
  return 0;
}
