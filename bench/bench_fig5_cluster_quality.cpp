// Reproduces paper Figure 5 + §IV.A.1's quality comparison: C-means vs
// K-means clustering of the Lymphocytes data set (20054 points, 4-D, 5
// clusters), compared "in terms of average width over clusters and points
// and clusters overlapping with standard Flame results".
//
// The FLAME data set is not redistributable; we use the synthetic
// flame-like mixture (same N/D/K, overlapping anisotropic clusters) with
// ground-truth labels (DESIGN.md "Substitutions"). Like the paper, initial
// centers are random and we keep the best of several runs.
//
// Shape to reproduce: "The C-means results are a little better than
// K-means in the two metrics for the test data set."
//
// Reproduction finding (EXPERIMENTS.md): on symmetric synthetic mixtures
// the two algorithms land within ~1% of each other on both metrics, with
// the ordering flipping between seeds — the paper's "a little better"
// verdict depends on the real FLAME lymphocyte populations (skewed,
// heavy-tailed) and its DA-derived reference labels, neither of which is
// redistributable. The reproducible shape is: both cluster the data well,
// and neither dominates.
#include <cmath>
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/kmeans.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "data/dataset.hpp"
#include "data/metrics.hpp"

int main() {
  using namespace prs;
  bench::print_header(
      "Figure 5 — C-means vs K-means quality on the Lymphocytes-like set",
      "20054 points, 4-D, 5 clusters (synthetic FLAME stand-in with ground "
      "truth). Best of 5 random initializations, run through the PRS on a "
      "2-node cluster.");

  Rng rng(2026);
  const data::Dataset ds = data::generate_flame_like(rng);

  struct Best {
    double width = 1e300;
    double overlap = 0.0;
    double ari = 0.0;
    int iterations = 0;
  };
  Best best_c, best_k;

  for (int run = 0; run < 5; ++run) {
    const std::uint64_t seed = 1000 + 137 * static_cast<std::uint64_t>(run);

    sim::Simulator sim_c;
    core::Cluster cluster_c(sim_c, 2, core::NodeConfig{});
    apps::CmeansParams cp;
    cp.clusters = 5;
    cp.max_iterations = 150;
    cp.seed = seed;
    auto cres = apps::cmeans_prs(cluster_c, ds.points, cp, core::JobConfig{});
    const double cw = data::average_cluster_width(ds.points, cres.assignment,
                                                  cres.centers);
    const double co =
        data::overlap_with_reference(cres.assignment, ds.labels);
    if (co > best_c.overlap) {
      best_c = {cw, co,
                data::adjusted_rand_index(cres.assignment, ds.labels),
                cres.iterations};
    }

    sim::Simulator sim_k;
    core::Cluster cluster_k(sim_k, 2, core::NodeConfig{});
    apps::KmeansParams kp;
    kp.clusters = 5;
    kp.max_iterations = 150;
    kp.seed = seed;
    auto kres = apps::kmeans_prs(cluster_k, ds.points, kp, core::JobConfig{});
    const double kw = data::average_cluster_width(ds.points, kres.assignment,
                                                  kres.centers);
    const double ko =
        data::overlap_with_reference(kres.assignment, ds.labels);
    if (ko > best_k.overlap) {
      best_k = {kw, ko,
                data::adjusted_rand_index(kres.assignment, ds.labels),
                kres.iterations};
    }
  }

  TextTable t({"algorithm", "avg width (lower=better)",
               "overlap w/ reference (higher=better)", "adjusted Rand",
               "iterations"});
  t.add_row({"C-means", TextTable::num(best_c.width, 4),
             TextTable::num(best_c.overlap, 4), TextTable::num(best_c.ari, 4),
             std::to_string(best_c.iterations)});
  t.add_row({"K-means", TextTable::num(best_k.width, 4),
             TextTable::num(best_k.overlap, 4), TextTable::num(best_k.ari, 4),
             std::to_string(best_k.iterations)});
  t.print();

  const double rel =
      (best_c.overlap - best_k.overlap) / best_k.overlap * 100.0;
  std::printf(
      "\nShape check: C-means within ~2%% of K-means on overlap (%+.2f%%) "
      "-> %s.\nPaper §IV.A.1 reports C-means 'a little better' on the real "
      "FLAME data; on the synthetic\nstand-in the two are statistically "
      "tied (see EXPERIMENTS.md).\n",
      rel, std::fabs(rel) <= 2.0 ? "holds" : "DOES NOT HOLD");
  return 0;
}
