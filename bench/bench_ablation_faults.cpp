// Ablation: completion-time overhead of fault tolerance vs injected fault
// rate, for the three level-2 scheduling policies.
//
// Transient task errors (task_error:*:p=R) are injected at growing rates
// and every policy runs the same functional job on the tolerant path. Each
// cell averages five fault seeds and also reports the worst seed, because
// the interesting failure mode is a *retry storm*: with the static (Eq (8))
// block layout a partition is split into few, large blocks, so an unlucky
// chain of failed attempts re-executes large work items back-to-back on the
// critical path and the tail blows up. Dynamic (block-polling) scheduling
// re-runs cheap blocks that idle devices absorb, so its degradation is
// gradual and nearly seed-independent. The adaptive policy learns a better
// CPU share (lower fault-free baseline) but inherits the static block
// layout, and with it the retry-storm tail at high error rates.
//
// Everything is virtual-time deterministic: same seed, same schedule.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "core/schedule_policy.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"

namespace {

using namespace prs;

constexpr int kKeys = 37;
constexpr std::size_t kItems = 200000;
constexpr int kNodes = 4;
constexpr std::uint64_t kSeeds = 5;

core::MapReduceSpec<int, long long> sum_spec() {
  core::MapReduceSpec<int, long long> spec;
  spec.name = "fault-ablation-sum";
  spec.cpu_map = [](const core::InputSlice& s,
                    core::Emitter<int, long long>& e) {
    long long sums[kKeys] = {};
    for (std::size_t i = s.begin; i < s.end; ++i) {
      sums[i % kKeys] += static_cast<long long>(i);
    }
    for (int k = 0; k < kKeys; ++k) {
      if (sums[k] != 0) e.emit(k, sums[k]);
    }
  };
  spec.combine = [](const long long& a, const long long& b) { return a + b; };
  // Heavy enough per item that block durations dominate the retry backoff
  // (otherwise the 250 us backoff floor swamps the signal).
  spec.cpu_flops_per_item = 50000.0;
  spec.gpu_flops_per_item = 50000.0;
  spec.ai_cpu = 50.0;
  spec.ai_gpu = 50.0;
  spec.item_bytes = 8.0;
  spec.pair_bytes = 16.0;
  return spec;
}

/// One deterministic tolerant run; rate 0 attaches no injector (fault-free
/// fast path) so the baseline is the pre-fault-subsystem virtual time. The
/// adaptive policy warms up on two fault-free jobs first, then measures a
/// faulted job re-using the learned split (a long-lived service whose nodes
/// start misbehaving).
double run_once(double rate, const std::string& policy, std::uint64_t seed) {
  sim::Simulator sim;
  core::Cluster cluster(sim, kNodes, core::NodeConfig{});
  core::JobConfig cfg;
  cfg.charge_job_startup = false;
  core::AdaptiveFeedbackPolicy adaptive(/*gain=*/0.5,
                                        /*initial_fraction=*/0.5);
  if (policy == "dynamic") {
    cfg.scheduling = core::SchedulingMode::kDynamic;
  } else if (policy == "adaptive") {
    cfg.policy = &adaptive;
    auto spec = sum_spec();
    for (int warmup = 0; warmup < 2; ++warmup) {
      (void)core::run_job(cluster, spec, cfg, kItems);
    }
    cluster.reset_counters();
  }
  std::unique_ptr<fault::FaultInjector> inj;
  if (rate > 0.0) {
    char spec_str[64];
    std::snprintf(spec_str, sizeof(spec_str), "task_error:*:p=%g", rate);
    inj = std::make_unique<fault::FaultInjector>(
        sim, fault::FaultPlan::parse(spec_str), seed);
    cfg.faults = inj.get();
  }
  auto spec = sum_spec();
  auto res = core::run_job(cluster, spec, cfg, kItems);
  return res.stats.elapsed;
}

struct Cell {
  double mean = 0.0;
  double worst = 0.0;
};

Cell run_cell(double rate, const std::string& policy) {
  Cell c;
  if (rate == 0.0) {
    // No randomness without an injector: one run is the exact answer.
    c.mean = c.worst = run_once(rate, policy, 1);
    return c;
  }
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const double el = run_once(rate, policy, seed);
    c.mean += el / static_cast<double>(kSeeds);
    c.worst = std::max(c.worst, el);
  }
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — fault-tolerance overhead vs transient task-error rate",
      "4 Delta nodes, 200k-item functional sum job; task_error:*:p=R, "
      "mean over 5 fault seeds; rate 0 = fault-free fast path.");

  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.1};

  TextTable t({"policy", "R=0 [s]", "R=0.01 [s]", "R=0.05 [s]", "R=0.1 [s]",
               "mean ovh @0.1", "worst @0.1 [s]"});
  for (const char* policy : {"static", "dynamic", "adaptive"}) {
    std::vector<std::string> row = {policy};
    double base = 0.0;
    Cell last;
    for (double r : rates) {
      last = run_cell(r, policy);
      if (r == 0.0) base = last.mean;
      row.push_back(TextTable::num(last.mean, 4));
    }
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%+.1f%%",
                  (last.mean / base - 1.0) * 100.0);
    row.push_back(overhead);
    row.push_back(TextTable::num(last.worst, 4));
    t.add_row(row);
  }
  t.print();

  std::printf(
      "\nShape checks: every policy degrades as the error rate grows and "
      "every run still returns the\nexact fault-free result. Dynamic "
      "block-polling degrades gracefully — small re-executed blocks,\n"
      "worst seed ~= mean. Static's large Eq (8) blocks stall visibly in "
      "the worst seed (retry storm\non the critical path); adaptive earns "
      "the best fault-free baseline but shares static's block\nlayout and "
      "therefore its tail.\n");
  return 0;
}
