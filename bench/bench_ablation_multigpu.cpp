// Ablation: fat nodes with one vs two GPU cards.
//
// Table 4 lists two C2070s per Delta node, but the paper's experiments use
// one ("The MPI/GPU and PRS use one GPU on each node"). This bench shows
// what the second card buys under the extended analytic model
// (Fg_total = 2*Fg, each card with its own PCI-E link): compute-bound apps
// approach 2x on the GPU share; PCI-E-bound apps gain from the second
// independent link; the CPU share p shrinks per Eq (8).
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "bench_util.hpp"
#include "core/cluster.hpp"

namespace {

using namespace prs;

core::NodeConfig delta_with(int gpus) {
  core::NodeConfig cfg;
  cfg.gpus_per_node = gpus;
  return cfg;
}

core::JobConfig steady(bool with_cpu) {
  core::JobConfig cfg;
  cfg.use_cpu = with_cpu;
  cfg.charge_job_startup = false;
  return cfg;
}

double cmeans_rate(int gpus, bool with_cpu) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, delta_with(gpus));
  apps::CmeansParams p;
  p.clusters = 10;
  p.max_iterations = 10;
  auto s = apps::cmeans_prs_modeled(cluster, 1000000, 100, p,
                                    steady(with_cpu));
  return s.total_flops() / s.elapsed / 1e9;
}

double gemv_rate(int gpus, bool with_cpu) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 1, delta_with(gpus));
  auto s = apps::gemv_prs_modeled(cluster, 35000, 10000, steady(with_cpu));
  return s.total_flops() / s.elapsed / 1e9;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — one vs two GPUs per fat node (Delta, Table 4)",
      "Gflops/node, steady state. p from the gpu_count-extended Eq (8).");

  {
    const roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                            simdev::delta_c2070());
    TextTable t({"app", "p (1 GPU)", "p (2 GPUs)"});
    struct Row {
      const char* app;
      double ai;
      bool staged;
    } rows[] = {
        {"GEMV", 2.0, true},
        {"C-means (M=10)", 50.0, false},
        {"GMM (M=100,D=60)", 66000.0, false},
    };
    for (const auto& r : rows) {
      char p1[16], p2[16];
      std::snprintf(p1, sizeof(p1), "%.1f%%",
                    sched.workload_split(r.ai, r.staged, 1).cpu_fraction *
                        100.0);
      std::snprintf(p2, sizeof(p2), "%.1f%%",
                    sched.workload_split(r.ai, r.staged, 2).cpu_fraction *
                        100.0);
      t.add_row({r.app, p1, p2});
    }
    t.print();
  }

  std::printf("\n-- measured Gflops/node --\n");
  TextTable t({"app / backends", "1 GPU", "2 GPUs", "2-GPU gain"});
  struct Case {
    const char* name;
    double (*run)(int, bool);
    bool with_cpu;
  } cases[] = {
      {"C-means, GPU only", cmeans_rate, false},
      {"C-means, GPU+CPU", cmeans_rate, true},
      {"GEMV, GPU only", gemv_rate, false},
      {"GEMV, GPU+CPU", gemv_rate, true},
  };
  for (const auto& c : cases) {
    const double g1 = c.run(1, c.with_cpu);
    const double g2 = c.run(2, c.with_cpu);
    char gain[16];
    std::snprintf(gain, sizeof(gain), "%.2fx", g2 / g1);
    t.add_row({c.name, TextTable::num(g1, 4), TextTable::num(g2, 4), gain});
  }
  t.print();

  std::printf(
      "\nShape checks: compute-bound C-means nearly doubles its GPU-side "
      "throughput; PCI-E-bound GEMV\ngains from the second card's own link; "
      "with the CPU active the relative gain shrinks because\nthe CPU share "
      "is unchanged hardware.\n");
  return 0;
}
