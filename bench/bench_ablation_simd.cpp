// Ablation: SIMD inner kernels (src/simd/) — single-thread throughput per
// ISA level and the bit-identity contract that lets the levels coexist.
//
// The paper's CPU daemon issues "one pthread per core" of scalar C; PRS
// adds runtime-dispatched AVX2/AVX-512 inner kernels underneath the same
// deterministic chunking. This bench pins the thread pool to one thread
// (so the ratio is pure ISA, not parallelism), runs each app's serial
// path at every compiled-and-supported level, and reports:
//
//   * best-of-3 wall-clock per level with the speedup vs. scalar;
//   * a byte-identity verdict — the deterministic kernel tier is
//     lane-per-output with scalar-order accumulation, so every level must
//     produce the same bytes;
//   * the acceptance check: AVX2 >= 1.5x scalar on at least two of
//     {cmeans, kmeans, gmm, dgemm}.
//
// Wall-clock numbers vary run to run (real machine, not the virtual
// clock); the identity verdict and the dispatch table must not.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "apps/cmeans.hpp"
#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/blas.hpp"
#include "simd/dispatch.hpp"

namespace {

using namespace prs;

/// FNV-1a over raw double bytes: byte-identity, not approximate equality.
std::uint64_t digest(std::uint64_t h, const double* p, std::size_t n) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

/// Best-of-3 wall-clock seconds (first run also warms caches).
template <typename F>
double best_seconds(F&& f) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

struct LevelRun {
  double seconds = 0.0;
  std::uint64_t digest = 0;
};

struct KernelReport {
  std::string name;
  std::vector<LevelRun> runs;  // parallel to the levels vector
  bool identical = true;
};

std::string cell(double seconds, double scalar_seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%9.2f ms (%4.2fx)", seconds * 1e3,
                seconds > 0.0 ? scalar_seconds / seconds : 0.0);
  return buf;
}

linalg::MatrixD synth_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  linalg::MatrixD points(n, d);
  for (std::size_t i = 0; i < n * d; ++i) {
    points.storage()[i] = rng.uniform(-4.0, 4.0);
  }
  return points;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — SIMD inner kernels: single-thread speedup per ISA level",
      "Pool pinned to 1 thread; deterministic (non-FMA) tier, so all levels "
      "must be byte-identical. Acceptance: AVX2 >= 1.5x scalar on >= 2 of "
      "{cmeans, kmeans, gmm, dgemm}.");

  auto& pool = exec::ThreadPool::instance();
  pool.configure(1);

  std::vector<simd::Level> levels{simd::Level::kScalar};
  if (simd::level_supported(simd::Level::kAvx2)) {
    levels.push_back(simd::Level::kAvx2);
  }
  if (simd::level_supported(simd::Level::kAvx512)) {
    levels.push_back(simd::Level::kAvx512);
  }
  std::printf("detected level: %s | compiled: avx2=%s avx512=%s\n",
              simd::level_name(simd::detected_level()),
              simd::avx2_compiled() ? "yes" : "no",
              simd::avx512_compiled() ? "yes" : "no");

  // Paper-shaped workloads: many points, wide enough D that the distance
  // and moment sweeps dominate the per-point scalar transcendentals
  // (pow/log), few iterations so best-of-3 stays under a second per cell.
  const linalg::MatrixD points = synth_points(12000, 48, 42);
  apps::CmeansParams cp;
  cp.clusters = 8;
  cp.max_iterations = 3;
  cp.epsilon = 0.0;
  apps::KmeansParams kp;
  kp.clusters = 8;
  kp.max_iterations = 3;
  kp.epsilon = 0.0;
  apps::GmmParams gp;
  gp.components = 8;
  gp.max_iterations = 3;
  gp.epsilon = 0.0;

  const std::size_t gemm_n = 384;
  linalg::MatrixD ga(gemm_n, gemm_n), gb(gemm_n, gemm_n);
  {
    Rng rng(7);
    for (std::size_t i = 0; i < gemm_n * gemm_n; ++i) {
      ga.storage()[i] = rng.uniform(-1.0, 1.0);
      gb.storage()[i] = rng.uniform(-1.0, 1.0);
    }
  }

  const std::size_t gemv_n = 768;
  linalg::MatrixD va(gemv_n, gemv_n);
  std::vector<double> vx(gemv_n);
  {
    Rng rng(11);
    for (std::size_t i = 0; i < gemv_n * gemv_n; ++i) {
      va.storage()[i] = rng.uniform(-1.0, 1.0);
    }
    for (std::size_t i = 0; i < gemv_n; ++i) vx[i] = rng.uniform(-1.0, 1.0);
  }

  std::vector<KernelReport> reports;
  for (const char* name : {"cmeans", "kmeans", "gmm", "dgemm", "gemv"}) {
    reports.push_back(KernelReport{name, {}, true});
  }

  for (const simd::Level level : levels) {
    simd::set_level(level);

    {  // cmeans map sweep (Eq 13 weights + Eq 14 partial sums).
      apps::CmeansResult res;
      const double s =
          best_seconds([&] { res = apps::cmeans_serial(points, cp); });
      std::uint64_t h = digest(1469598103934665603ULL,
                               res.centers.storage().data(),
                               res.centers.storage().size());
      h = digest(h, &res.objective, 1);
      reports[0].runs.push_back({s, h});
    }
    {  // kmeans: distance block + argmin + sum accumulation.
      apps::KmeansResult res;
      const double s =
          best_seconds([&] { res = apps::kmeans_serial(points, kp); });
      std::uint64_t h = digest(1469598103934665603ULL,
                               res.centers.storage().data(),
                               res.centers.storage().size());
      h = digest(h, &res.inertia, 1);
      reports[1].runs.push_back({s, h});
    }
    {  // gmm E-step: diagonal quadratic form + weighted moments.
      apps::GmmModel model;
      const double s =
          best_seconds([&] { model = apps::gmm_serial(points, gp); });
      std::uint64_t h = digest(1469598103934665603ULL,
                               model.means.storage().data(),
                               model.means.storage().size());
      h = digest(h, &model.log_likelihood, 1);
      reports[2].runs.push_back({s, h});
    }
    {  // blocked dgemm (the paper's dense-kernel workload).
      linalg::MatrixD gc(gemm_n, gemm_n, 0.0);
      const double s =
          best_seconds([&] { linalg::gemm_blocked(1.0, ga, gb, 0.0, gc, 64); });
      reports[3].runs.push_back(
          {s, digest(1469598103934665603ULL, gc.storage().data(),
                     gc.storage().size())});
    }
    {  // gemv via row_dots (lane-per-row, still bit-identical).
      std::vector<double> vy(gemv_n, 0.0);
      const double s = best_seconds([&] {
        for (int rep = 0; rep < 50; ++rep) {
          linalg::gemv(1.0, va, std::span<const double>{vx},
                       0.0, std::span<double>{vy});
        }
      });
      reports[4].runs.push_back(
          {s, digest(1469598103934665603ULL, vy.data(), vy.size())});
    }
  }
  simd::clear_level_override();

  // -- report -----------------------------------------------------------
  std::printf("\n%-8s", "kernel");
  for (const simd::Level level : levels) {
    std::printf(" | %19s", simd::level_name(level));
  }
  std::printf(" | identical\n");
  bool all_identical = true;
  for (auto& rep : reports) {
    for (const auto& run : rep.runs) {
      rep.identical = rep.identical && run.digest == rep.runs[0].digest;
    }
    all_identical = all_identical && rep.identical;
    std::printf("%-8s", rep.name.c_str());
    for (const auto& run : rep.runs) {
      std::printf(" | %s", cell(run.seconds, rep.runs[0].seconds).c_str());
    }
    std::printf(" | %s\n", rep.identical ? "yes" : "NO — BUG");
  }

  // -- acceptance verdicts ----------------------------------------------
  int fast_enough = 0;
  if (levels.size() > 1) {
    for (std::size_t i = 0; i < 4; ++i) {  // cmeans, kmeans, gmm, dgemm
      const double ratio =
          reports[i].runs[0].seconds / reports[i].runs[1].seconds;
      if (ratio >= 1.5) ++fast_enough;
    }
    std::printf(
        "\nacceptance: %d of {cmeans, kmeans, gmm, dgemm} at >= 1.5x "
        "avx2-vs-scalar (need >= 2): %s\n",
        fast_enough, fast_enough >= 2 ? "PASS" : "FAIL");
  } else {
    std::printf("\nacceptance: host has no AVX2 — speedup check skipped\n");
  }
  std::printf("byte-identity across levels: %s\n",
              all_identical ? "PASS" : "FAIL");

  pool.configure(0);  // restore the default for anything run after us
  return (all_identical && (levels.size() == 1 || fast_enough >= 2)) ? 0 : 1;
}
