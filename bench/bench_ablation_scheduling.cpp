// Ablation promised in §III.B.2: static (analytic-model) vs dynamic
// (block-polling) scheduling — "Our PRS provides for both scheduling
// strategies. We will make comparisons in following sections."
//
// Three comparisons on the Delta node model:
//  1. elapsed time of static vs dynamic for C-means and GEMV across block
//     sizes (dynamic pays per-block polling overhead; tiny blocks flood the
//     dispatcher, huge blocks imbalance the devices);
//  2. sensitivity of static scheduling to the CPU fraction p: sweep p and
//     show the analytic p from Eq (8) sits at (or near) the minimum —
//     "according to the linear programming theory, when Tg_p ~= Tc_p, Tgc
//     gets the minimal value";
//  3. the cost of getting p wrong, quantifying what the analytic model buys
//     over naive 50/50 or CPU-only/GPU-only placements;
//  4. the adaptive feedback policy: started from a deliberately wrong p, it
//     converges toward the Eq (8) optimum from observed busy times alone.
//
// Dynamic-mode numbers charge the serial task-dispatch cost as each block
// is handed to a polling daemon (not all up front), so the dispatcher
// overlaps with execution but late blocks arrive late.
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/gemv.hpp"
#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"

namespace {

using namespace prs;

double cmeans_time(core::JobConfig cfg) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 2, core::NodeConfig{});
  apps::CmeansParams p;
  p.clusters = 10;
  p.max_iterations = 10;
  cfg.charge_job_startup = false;
  auto stats = apps::cmeans_prs_modeled(cluster, 400000, 100, p, cfg);
  return stats.elapsed;
}

double gemv_time(core::JobConfig cfg) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 2, core::NodeConfig{});
  cfg.charge_job_startup = false;
  auto stats = apps::gemv_prs_modeled(cluster, 70000, 10000, cfg);
  return stats.elapsed;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — static (Eq (8)) vs dynamic (block polling) scheduling",
      "2 Delta nodes; C-means 400k x 100, M=10, 10 iterations; GEMV 70000 x "
      "10000.");

  {
    core::JobConfig stat;
    stat.scheduling = core::SchedulingMode::kStatic;
    TextTable t({"app", "static [s]", "dynamic auto [s]",
                 "dynamic 1k-item blocks [s]", "dynamic 50k-item blocks [s]"});
    for (const char* app : {"cmeans", "gemv"}) {
      auto run = [&](core::JobConfig cfg) {
        return app == std::string("cmeans") ? cmeans_time(cfg)
                                            : gemv_time(cfg);
      };
      core::JobConfig dyn = stat;
      dyn.scheduling = core::SchedulingMode::kDynamic;
      core::JobConfig dyn_small = dyn;
      dyn_small.dynamic_block_items = 1000;
      core::JobConfig dyn_big = dyn;
      dyn_big.dynamic_block_items = 50000;
      t.add_row({app, TextTable::num(run(stat), 4),
                 TextTable::num(run(dyn), 4),
                 TextTable::num(run(dyn_small), 4),
                 TextTable::num(run(dyn_big), 4)});
    }
    t.print();
  }

  std::printf(
      "\n-- sensitivity of job time to the CPU fraction p (C-means) --\n");
  {
    sim::Simulator probe;
    core::Cluster c0(probe, 1, core::NodeConfig{});
    const double p_star =
        c0.scheduler()
            .workload_split(apps::cmeans_arithmetic_intensity(10), false)
            .cpu_fraction;

    TextTable t({"p (CPU share)", "elapsed [s]", "vs best"});
    double best = 1e300;
    std::vector<std::pair<double, double>> rows;
    for (double p :
         {0.0, 0.05, p_star, 0.2, 0.35, 0.5, 0.75, 1.0}) {
      core::JobConfig cfg;
      cfg.cpu_fraction_override = p;
      const double el = cmeans_time(cfg);
      rows.emplace_back(p, el);
      best = std::min(best, el);
    }
    for (auto& [p, el] : rows) {
      char label[48];
      std::snprintf(label, sizeof(label), "%.3f%s", p,
                    p == p_star ? "  <- Eq (8)" : "");
      char slowdown[32];
      std::snprintf(slowdown, sizeof(slowdown), "%+.1f%%",
                    (el / best - 1.0) * 100.0);
      t.add_row({label, TextTable::num(el, 5), slowdown});
    }
    t.print();
    std::printf(
        "\nShape checks: the Eq (8) fraction sits at/near the sweep minimum; "
        "both extremes (p=0 GPU-only,\np=1 CPU-only) are clearly slower; "
        "dynamic scheduling tracks static but pays polling overhead,\n"
        "especially with tiny blocks.\n");
  }

  std::printf(
      "\n-- adaptive policy: convergence from a wrong start (C-means) --\n");
  {
    sim::Simulator probe;
    core::Cluster c0(probe, 1, core::NodeConfig{});
    const double p_star =
        c0.scheduler()
            .workload_split(apps::cmeans_arithmetic_intensity(10), false)
            .cpu_fraction;

    // Start far from the optimum; each 10-iteration run feeds busy times
    // back into the same policy instance, like prs_run --policy=adaptive
    // --repeat=N.
    core::AdaptiveFeedbackPolicy adaptive(/*gain=*/0.5,
                                          /*initial_fraction=*/0.5);
    core::JobConfig cfg;
    cfg.policy = &adaptive;
    TextTable t({"run", "elapsed [s]", "learned p after", "Eq (8) p"});
    for (int run = 1; run <= 4; ++run) {
      const double el = cmeans_time(cfg);
      t.add_row({std::to_string(run), TextTable::num(el, 5),
                 TextTable::num(adaptive.learned_fraction(0), 4),
                 TextTable::num(p_star, 4)});
    }
    t.print();
    std::printf(
        "\nShape check: the learned p moves from the deliberately wrong 0.5 "
        "start toward the analytic\noptimum, and elapsed time drops "
        "accordingly (StarPU-style measured feedback).\n");
  }
  return 0;
}
