// Wall-clock microbenchmarks (google-benchmark) of the host library:
// discrete-event engine throughput, coroutine channel/resource round trips,
// BLAS kernels, collective operations, and an end-to-end PRS job — the
// costs a user of this library actually pays per simulated event.
#include <benchmark/benchmark.h>

#include "apps/wordcount.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "linalg/blas.hpp"
#include "simnet/fabric.hpp"
#include "simtime/channel.hpp"
#include "simtime/process.hpp"
#include "simtime/resource.hpp"

namespace {

using namespace prs;

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_after(static_cast<double>(i) * 1e-6, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_SimulatorEventDispatch);

sim::Process ping(sim::Simulator& sim, sim::Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim::delay(sim, 1e-9);
    ch.send(i);
  }
  ch.close();
}

sim::Process pong(sim::Simulator&, sim::Channel<int>& ch, long& sum) {
  for (;;) {
    auto v = co_await ch.recv();
    if (!v) break;
    sum += *v;
  }
}

void BM_ChannelRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> ch(sim);
    long sum = 0;
    sim.spawn(ping(sim, ch, 512));
    sim.spawn(pong(sim, ch, sum));
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_ChannelRoundTrip);

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  linalg::MatrixD a(n, n);
  for (auto& v : a.storage()) v = rng.uniform(-1, 1);
  std::vector<double> x(n, 1.0), y(n, 0.0);
  for (auto _ : state) {
    linalg::gemv(1.0, a, std::span<const double>(x), 0.0,
                 std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n * n));
}
BENCHMARK(BM_Gemv)->Arg(128)->Arg(512);

void BM_GemmBlockedVsNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool blocked = state.range(1) != 0;
  Rng rng(2);
  linalg::MatrixD a(n, n), b(n, n), c(n, n);
  for (auto& v : a.storage()) v = rng.uniform(-1, 1);
  for (auto& v : b.storage()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    if (blocked) {
      linalg::gemm_blocked(1.0, a, b, 0.0, c, 64);
    } else {
      linalg::gemm(1.0, a, b, 0.0, c);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmBlockedVsNaive)->Args({128, 0})->Args({128, 1})->Args({256, 0})->Args({256, 1});

void BM_AllreduceSimulated(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    simnet::Fabric fab(sim, nodes, simnet::FabricSpec{});
    auto remaining = std::make_shared<int>(nodes);
    for (int r = 0; r < nodes; ++r) {
      sim.spawn([](sim::Simulator&, simnet::Communicator& c,
                   std::shared_ptr<int> rem) -> sim::Process {
        simnet::Message mine{1024.0, 1};
        simnet::Combiner combine = [](simnet::Message a, simnet::Message) {
          return a;
        };
        (void)co_await c.allreduce(std::move(mine), std::move(combine), 1);
        --*rem;
      }(sim, fab.comm(r), remaining));
    }
    sim.run();
    benchmark::DoNotOptimize(*remaining);
  }
}
BENCHMARK(BM_AllreduceSimulated)->Arg(4)->Arg(16)->Arg(64);

void BM_EndToEndWordcountJob(benchmark::State& state) {
  Rng rng(3);
  auto corpus = std::make_shared<const apps::Corpus>(
      apps::generate_corpus(rng, 512, 6, 64));
  for (auto _ : state) {
    sim::Simulator sim;
    core::Cluster cluster(sim, 4, core::NodeConfig{});
    auto counts = apps::wordcount_prs(cluster, corpus, core::JobConfig{});
    benchmark::DoNotOptimize(counts.size());
  }
}
BENCHMARK(BM_EndToEndWordcountJob);

}  // namespace

BENCHMARK_MAIN();
