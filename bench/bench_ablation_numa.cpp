// Ablation: NUMA-aware host execution (prs::numa + exec::ThreadPool).
//
// Measures what NUMA mode buys on the actual host, per workload:
//
//   * wordcount map+shuffle throughput, NUMA off (parallel_reduce over
//     std::map partials) vs NUMA on (Metis-style per-lane kv-stores,
//     lock-free single-writer, fixed lane-order merge);
//   * the C-means accumulate sweep, NUMA off vs on (pinning + socket-local
//     steal order + input prefault);
//   * steal locality (exec.pool.steals_local / steals_remote) under each
//     mode;
//   * a byte-identity check between the modes — placement must never
//     change the bytes (exit 1 if it does).
//
// On a single-socket host the steal-order/pinning deltas are noise by
// design (the lane map degenerates to the flat one); the per-lane shuffle
// win is real everywhere because it also removes the map-merge combine.
// Wall-clock numbers vary run to run; the identity verdict must not.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/cmeans.hpp"
#include "apps/wordcount.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "exec/thread_pool.hpp"
#include "numa/topology.hpp"

namespace {

using namespace prs;

std::uint64_t digest(std::uint64_t h, const double* p, std::size_t n) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

/// Best-of-3 wall-clock seconds (first run also warms workers/pages).
template <typename F>
double best_seconds(F&& f) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

std::string cell(double seconds, double baseline_seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.2f ms (%4.2fx)", seconds * 1e3,
                seconds > 0.0 ? baseline_seconds / seconds : 0.0);
  return buf;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — NUMA mode: pinning, socket-local steals, per-lane shuffle",
      "Real host time. The wordcount shuffle win comes from per-lane "
      "kv-stores (no map-merge combine); pinning/steal-order deltas only "
      "appear on multi-socket hosts. Bytes must match between modes.");

  auto& pool = exec::ThreadPool::instance();
  const numa::Topology host = numa::discover();
  std::printf("host topology: %s\n\n", host.summary().c_str());

  // Wordcount workload: Zipf-ish corpus, paper's leftmost-AI app.
  Rng rng(42);
  auto corpus = std::make_shared<const apps::Corpus>(
      apps::generate_corpus(rng, 60000, 12, 20000));
  auto wc_spec = apps::wordcount_spec(corpus);

  // C-means accumulate workload (the map inner loop NUMA placement serves).
  auto ds = data::generate_blobs(rng, 40000, 16, 8, 10.0, 1.0);
  linalg::MatrixD centers(8, ds.points.cols());
  for (std::size_t r = 0; r < centers.rows(); ++r) {
    for (std::size_t c = 0; c < centers.cols(); ++c) {
      centers(r, c) = ds.points(r, c);
    }
  }

  struct ModeResult {
    double wc_s = 0.0;
    double cm_s = 0.0;
    std::uint64_t wc_digest = 0;
    std::uint64_t cm_digest = 0;
    std::uint64_t steals_local = 0;
    std::uint64_t steals_remote = 0;
    int sockets = 1;
    int pinned = 0;
  };

  auto run_mode = [&](bool on) {
    numa::ScopedEnable scope(on);
    ModeResult r;
    pool.reset_stats();

    std::map<std::string, long> wc_out;
    r.wc_s = best_seconds([&] {
      core::Emitter<std::string, long> em;
      wc_spec.cpu_map(core::InputSlice{0, corpus->size()}, em);
      wc_out.clear();
      for (const auto& [w, c] : em.pairs()) wc_out[w] += c;
    });
    r.wc_digest = 1469598103934665603ULL;
    for (const auto& [w, c] : wc_out) {
      for (const char ch : w) {
        r.wc_digest =
            (r.wc_digest ^ static_cast<unsigned char>(ch)) * 1099511628211ULL;
      }
      const auto cd = static_cast<double>(c);
      r.wc_digest = digest(r.wc_digest, &cd, 1);
    }

    std::vector<std::vector<double>> partials;
    r.cm_s = best_seconds([&] {
      apps::cmeans_accumulate(ds.points, centers, 2.0, 0, ds.points.rows(),
                              partials);
    });
    r.cm_digest = 1469598103934665603ULL;
    for (const auto& p : partials) {
      r.cm_digest = digest(r.cm_digest, p.data(), p.size());
    }

    const exec::PoolStats s = pool.stats();
    r.steals_local = s.steals_local;
    r.steals_remote = s.steals_remote;
    r.sockets = s.sockets;
    r.pinned = s.pinned_lanes;
    return r;
  };

  const int threads = exec::ThreadPool::default_threads();
  pool.configure(threads);
  const ModeResult off = run_mode(false);
  const ModeResult on = run_mode(true);

  TextTable t({"workload", "numa off", "numa on", "speedup"});
  char sp[32];
  std::snprintf(sp, sizeof(sp), "%.2fx", on.wc_s > 0 ? off.wc_s / on.wc_s : 0);
  t.add_row({"wordcount map+shuffle", cell(off.wc_s, off.wc_s),
             cell(on.wc_s, off.wc_s), sp});
  std::snprintf(sp, sizeof(sp), "%.2fx", on.cm_s > 0 ? off.cm_s / on.cm_s : 0);
  t.add_row({"cmeans accumulate", cell(off.cm_s, off.cm_s),
             cell(on.cm_s, off.cm_s), sp});
  t.print();

  std::printf("\nnuma on : %d socket group(s), %d pinned lane(s), "
              "steals %llu local / %llu remote\n",
              on.sockets, on.pinned,
              static_cast<unsigned long long>(on.steals_local),
              static_cast<unsigned long long>(on.steals_remote));
  std::printf("numa off: %d socket group(s), %d pinned lane(s), "
              "steals %llu local / %llu remote\n",
              off.sockets, off.pinned,
              static_cast<unsigned long long>(off.steals_local),
              static_cast<unsigned long long>(off.steals_remote));

  const bool identical =
      off.wc_digest == on.wc_digest && off.cm_digest == on.cm_digest;
  std::printf("byte-identity numa on vs off: %s\n",
              identical ? "PASS" : "FAIL");
  pool.configure(0);  // restore the default for anything run after us
  return identical ? 0 : 1;
}
