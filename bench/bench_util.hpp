// Shared helpers for the paper-reproduction bench harnesses: each bench
// regenerates one table or figure of the paper and prints the measured
// values next to the published ones with relative errors.
//
// Tracing: set PRS_TRACE_DIR=<dir> to make every cluster any bench builds
// emit a virtual-clock timeline (<dir>/cluster<N>.json, Chrome trace-event
// format — open in chrome://tracing or https://ui.perfetto.dev) plus a
// metrics dump, with no per-bench code changes. The hook lives in
// core::Cluster (see obs/ and DESIGN.md "Observability"); print_header
// announces it so trace files are discoverable from the bench output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exec/thread_pool.hpp"

namespace prs::bench {

/// The PRS_TRACE_DIR environment variable, or nullptr when tracing is off.
inline const char* trace_dir() {
  const char* dir = std::getenv("PRS_TRACE_DIR");
  return (dir != nullptr && *dir != '\0') ? dir : nullptr;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  if (const char* dir = trace_dir()) {
    std::printf("tracing: timelines + metrics -> %s/cluster<N>.json\n", dir);
  }
  // Wall-clock numbers depend on the host pool size; virtual-clock results
  // never do (the pool is byte-deterministic for any thread count).
  std::printf("host threads: %d (PRS_HOST_THREADS overrides)\n",
              exec::ThreadPool::instance().threads());
  std::printf("================================================================\n");
}

/// "x (err vs paper: y%)" cell.
inline std::string vs_paper(double measured, double paper, int precision = 3) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*g (%+.1f%%)", precision, measured,
                (measured - paper) / paper * 100.0);
  return buf;
}

}  // namespace prs::bench
