// Shared helpers for the paper-reproduction bench harnesses: each bench
// regenerates one table or figure of the paper and prints the measured
// values next to the published ones with relative errors.
#pragma once

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace prs::bench {

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("================================================================\n");
}

/// "x (err vs paper: y%)" cell.
inline std::string vs_paper(double measured, double paper, int precision = 3) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*g (%+.1f%%)", precision, measured,
                (measured - paper) / paper * 100.0);
  return buf;
}

}  // namespace prs::bench
