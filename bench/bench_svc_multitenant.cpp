// Service-layer bench: multi-tenant throughput and queue-wait latency on
// the prs::svc job server as a function of concurrent-job count and vGPU
// oversubscription (slots per physical card).
//
// Two tenants with 2:1 fair-share weights submit identical modeled cmeans
// jobs; the server time-slices them over the vGPU pool at iteration
// granularity. All measurements are in virtual time (deterministic for any
// host): throughput = jobs per virtual second of makespan, queue wait =
// virtual seconds from submit to a job's first granted stage
// (JobStatus.queue_wait), reported as p50/p99 across the batch.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "svc/journal.hpp"
#include "svc/server.hpp"

namespace {

using namespace prs;

svc::JobSpec job_spec() {
  svc::JobSpec spec;
  spec.app = "cmeans";
  spec.nodes = 1;
  spec.gpus = 1;
  spec.points = 20000;
  spec.dims = 16;
  spec.clusters = 8;
  spec.iterations = 20;
  spec.functional = false;  // modeled: virtual-time cost only
  return spec;
}

struct Cell {
  double throughput = 0.0;  // jobs / virtual second of makespan
  double wait_p50 = 0.0;    // virtual seconds submit -> first grant
  double wait_p99 = 0.0;
};

Cell run_batch(int jobs, int slots_per_card, svc::Journal* journal = nullptr) {
  svc::JobServer::Config cfg;
  cfg.pool.cards = 2;
  cfg.pool.slots_per_card = slots_per_card;
  cfg.admission.max_queue_depth = jobs + 1;
  cfg.journal = journal;
  svc::JobServer server(cfg);
  svc::TenantQuota heavy;
  heavy.weight = 2.0;
  heavy.max_vgpus = jobs;  // quota counts queued commitments, not just running
  heavy.max_running = jobs;
  heavy.max_queued = jobs;
  svc::TenantQuota light = heavy;
  light.weight = 1.0;
  server.add_tenant("a", heavy);
  server.add_tenant("b", light);

  const svc::JobSpec spec = job_spec();
  std::vector<int> ids;
  for (int i = 0; i < jobs; ++i) {
    auto res = server.submit(i % 2 == 0 ? "a" : "b", spec);
    if (!res.ok()) {
      std::fprintf(stderr, "submit rejected: %s\n",
                   res.decision.message.c_str());
      std::exit(1);
    }
    ids.push_back(res.job_id);
  }
  server.run_until_idle();

  Cell cell;
  double makespan = 0.0;
  std::vector<double> waits;
  for (int id : ids) {
    const svc::JobStatus st = server.status(id);
    if (st.state != svc::JobState::kDone) {
      std::fprintf(stderr, "job %d ended %s: %s\n", id,
                   svc::job_state_name(st.state), st.error.c_str());
      std::exit(1);
    }
    makespan = std::max(makespan, st.finish_vnow);
    waits.push_back(st.queue_wait);
  }
  cell.throughput = static_cast<double>(jobs) / makespan;
  cell.wait_p50 = percentile(waits, 50.0);
  cell.wait_p99 = percentile(waits, 99.0);
  return cell;
}

}  // namespace

int main() {
  bench::print_header(
      "Service layer — multi-tenant throughput and queue-wait latency",
      "2 physical cards; tenants a:b at 2:1 weights submit identical "
      "modeled cmeans jobs (20k points, 20 iterations). Virtual-time "
      "measurements; oversubscription = vGPU slots per card.");

  const std::vector<int> job_counts{2, 4, 8, 16};
  const std::vector<int> slot_counts{1, 2, 4};
  for (int slots : slot_counts) {
    TextTable t({"jobs", "vGPU slots", "throughput (jobs/vs)",
                 "queue wait p50 (vs)", "queue wait p99 (vs)"});
    for (int jobs : job_counts) {
      const Cell c = run_batch(jobs, slots);
      char tp[32], p50[32], p99[32];
      std::snprintf(tp, sizeof(tp), "%.4f", c.throughput);
      std::snprintf(p50, sizeof(p50), "%.4f", c.wait_p50);
      std::snprintf(p99, sizeof(p99), "%.4f", c.wait_p99);
      t.add_row({std::to_string(jobs),
                 std::to_string(slots) + "x" +
                     (slots == 1 ? " (no oversub)" : ""),
                 tp, p50, p99});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Reading: total throughput is flat in every configuration — the "
      "physical cards are the bottleneck and time-slicing conserves work. "
      "Oversubscription admits jobs to vGPUs earlier, trimming the median "
      "first-grant wait under load, but tail latency is set by fair-share "
      "order (FIFO within a tenant, stride across tenants), not by slot "
      "count.\n\n");

  // Durability overhead: the same batch with the write-ahead journal on.
  // Virtual-time results are identical by construction (the journal never
  // sits on the scheduling path's critical decisions); what durability
  // costs is host wall-clock — fsyncs on SUBMIT and terminal records,
  // group-committed by the flusher thread.
  {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "prs_bench_journal";
    fs::remove_all(dir);
    fs::create_directories(dir);
    TextTable t({"jobs", "journal", "wall ms", "throughput (jobs/vs)",
                 "journal records"});
    for (int jobs : job_counts) {
      for (int with_journal = 0; with_journal <= 1; ++with_journal) {
        std::unique_ptr<svc::Journal> journal;
        if (with_journal != 0) {
          svc::Journal::Config jcfg;
          jcfg.path =
              (dir / ("bench_" + std::to_string(jobs) + ".wal")).string();
          journal = std::make_unique<svc::Journal>(jcfg);
        }
        const auto t0 = std::chrono::steady_clock::now();
        const Cell c = run_batch(jobs, 2, journal.get());
        const auto t1 = std::chrono::steady_clock::now();
        const double wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        char wall[32], tp[32];
        std::snprintf(wall, sizeof(wall), "%.1f", wall_ms);
        std::snprintf(tp, sizeof(tp), "%.4f", c.throughput);
        t.add_row({std::to_string(jobs), with_journal ? "on" : "off", wall,
                   tp,
                   with_journal
                       ? std::to_string(journal->records_appended())
                       : "-"});
      }
    }
    t.print();
    fs::remove_all(dir);
    std::printf(
        "\nReading: virtual-time throughput is byte-identical with the "
        "journal on — durability is off the scheduling path. The wall-clock "
        "delta is the fsync cost of SUBMIT + terminal records (group "
        "commit batches concurrent appends into one fsync).\n");
  }
  return 0;
}
