// Ablation of §III.C.2 (region-based memory management), as a real
// wall-clock google-benchmark: bump allocation from a Region vs per-object
// heap allocation, for the runtime's characteristic pattern — many small
// intermediate key/value buffers allocated per task batch, freed all at
// once when the batch completes.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "simdev/region.hpp"

namespace {

constexpr std::size_t kAllocsPerBatch = 1024;

// Mixed small sizes typical of emitted key/value records.
std::size_t alloc_size(std::size_t i) { return 16 + (i % 7) * 24; }

void BM_RegionAllocate(benchmark::State& state) {
  prs::simdev::Region region(64 * 1024);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kAllocsPerBatch; ++i) {
      void* p = region.allocate(alloc_size(i));
      benchmark::DoNotOptimize(p);
    }
    region.clear();  // free the whole batch at once
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kAllocsPerBatch));
}
BENCHMARK(BM_RegionAllocate);

void BM_HeapAllocate(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::unique_ptr<std::byte[]>> batch;
    batch.reserve(kAllocsPerBatch);
    for (std::size_t i = 0; i < kAllocsPerBatch; ++i) {
      batch.push_back(std::make_unique<std::byte[]>(alloc_size(i)));
      benchmark::DoNotOptimize(batch.back().get());
    }
    batch.clear();  // per-object frees
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kAllocsPerBatch));
}
BENCHMARK(BM_HeapAllocate);

void BM_RegionTypedArrays(benchmark::State& state) {
  prs::simdev::Region region(256 * 1024);
  for (auto _ : state) {
    for (std::size_t i = 0; i < 256; ++i) {
      double* xs = region.allocate_array<double>(32);
      benchmark::DoNotOptimize(xs);
    }
    region.clear();
  }
}
BENCHMARK(BM_RegionTypedArrays);

void BM_VectorTypedArrays(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::vector<double>> batch;
    batch.reserve(256);
    for (std::size_t i = 0; i < 256; ++i) {
      batch.emplace_back(32);
      benchmark::DoNotOptimize(batch.back().data());
    }
  }
}
BENCHMARK(BM_VectorTypedArrays);

}  // namespace

BENCHMARK_MAIN();
