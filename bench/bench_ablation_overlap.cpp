// Ablation: what the task-graph runtime's compute/transfer overlap and
// pipelined iterations buy over the legacy stage barriers.
//
// For each application three engines run the *same* job:
//
//   stages    — the legacy runner: map barrier, bulk D2H, shuffle, reduce,
//               gather, then the next iteration;
//   graph d1  — the task graph at pipeline depth 1: faithful mode, must
//               reproduce the legacy virtual time to the last digit (the
//               determinism anchor, printed as a check);
//   graph dN  — depth > 1: per-block D2H copies overlap remaining compute
//               inside a stage, iterative apps pipeline whole iterations
//               (windows share one graph), and the stencil runs its
//               wavefront halo graph with no global barrier at all.
//
// GEMV/DGEMM run on the bigred2 testbed: its K20 has Hyper-Q (many
// hardware queues), so per-block D2H on the dedicated copy stream truly
// overlaps compute — on delta's C2070 (one queue) the same graph degrades
// to the serialized timeline, which is exactly the paper's §III.B.3.b
// point about checking hardware queues before streaming.
//
// All cases ablate the flat per-job startup constant (kPrsJobStartup,
// the 1.2 s Table 3 intercept: handshakes and daemon spin-up). It is the
// same additive term under every engine — charging it would only bury the
// overlap signal under a constant — and the halo graph never pays it, so
// excluding it keeps the stencil comparison apples-to-apples too.
//
// The final summary counts apps with a >= 10% virtual-time win; the
// process exits nonzero when fewer than two clear that bar, so CI can run
// this binary as the overlap acceptance smoke.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "core/schedule_policy.hpp"
#include "svc/job_spec.hpp"
#include "svc/launcher.hpp"

namespace {

using namespace prs;

struct Case {
  const char* label;
  svc::JobSpec spec;  // engine/pipeline_depth filled per run
  int depth;          // the "graph dN" column
};

/// Runs one spec variant and returns (elapsed, digest).
std::pair<double, std::string> run_case(svc::JobSpec spec,
                                        const std::string& engine,
                                        int depth) {
  spec.engine = engine;
  spec.pipeline_depth = depth;
  spec.validate();
  sim::Simulator sim;
  const core::NodeConfig node = spec.node_config();
  core::Cluster cluster(sim, spec.nodes, node);
  core::JobConfig cfg = spec.job_config();
  cfg.charge_job_startup = false;  // constant term, identical per engine
  auto policy = core::make_policy(spec.policy);
  cfg.policy = policy.get();
  Rng rng(spec.seed);
  const svc::LaunchOutcome out =
      svc::run_job_spec(spec, cluster, node, cfg, rng, nullptr);
  return {out.stats.elapsed, out.digest};
}

std::vector<Case> cases() {
  std::vector<Case> cs;
  {
    // Pipelined iterations + Hyper-Q D2H overlap: thirty clustering sweeps
    // share one graph window, so per-iteration gather barriers leave the
    // critical path, and each block's membership copy-back hides behind
    // the kernels of blocks still in flight.
    svc::JobSpec s;
    s.app = "cmeans";
    s.testbed = "bigred2";
    s.nodes = 4;
    s.points = 500000;
    s.dims = 100;
    s.clusters = 32;
    s.iterations = 30;
    cs.push_back({"cmeans (modeled, bigred2)", s, 8});
  }
  {
    // Contrast row: on delta's C2070 the single hardware queue serializes
    // copies with kernels, so the same graph machinery wins little.
    svc::JobSpec s;
    s.app = "gmm";
    s.nodes = 4;
    s.points = 100000;
    s.dims = 60;
    s.clusters = 8;
    s.iterations = 10;
    cs.push_back({"gmm (modeled, delta)", s, 8});
  }
  {
    // Per-block D2H overlap inside one job: K20 Hyper-Q overlaps the
    // copy-back of finished blocks with the remaining kernels.
    svc::JobSpec s;
    s.app = "gemv";
    s.testbed = "bigred2";
    s.nodes = 4;
    s.rows = 35000;
    s.cols = 10000;
    cs.push_back({"gemv (modeled, bigred2)", s, 2});
  }
  {
    // A copy-heavy GEMM shape: the wide, shallow product (small inner dim)
    // maximizes output bytes per flop, so the per-block C-tile copy-back
    // is a large fraction of the stage — exactly what Hyper-Q hides.
    svc::JobSpec s;
    s.app = "dgemm";
    s.testbed = "bigred2";
    s.nodes = 4;
    s.rows = 32000;
    s.cols = 16000;
    s.dims = 64;
    cs.push_back({"dgemm (modeled, bigred2)", s, 2});
  }
  {
    // The wavefront halo graph: no global barrier at all, fast row blocks
    // run up to `depth` Jacobi sweeps ahead of slow ones.
    svc::JobSpec s;
    s.app = "stencil";
    s.functional = true;
    s.nodes = 4;
    s.dims = 192;  // grid rows
    s.cols = 128;
    s.iterations = 30;
    cs.push_back({"stencil (functional, delta)", s, 4});
  }
  return cs;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: task-graph overlap & pipelined iterations",
      "stages vs graph depth 1 (must tie) vs graph depth N (overlap win)");

  TextTable t({"app", "stages", "graph d1", "graph dN", "depth", "win",
               "d1 check"});
  int clear_wins = 0;
  for (const Case& c : cases()) {
    const auto [t_stages, d_stages] = run_case(c.spec, "stages", 1);
    const auto [t_d1, d_d1] = run_case(c.spec, "graph", 1);
    const auto [t_dn, d_dn] = run_case(c.spec, "graph", c.depth);
    const double win = (t_stages - t_dn) / t_stages * 100.0;
    if (win >= 10.0) ++clear_wins;
    const bool d1_faithful = t_d1 == t_stages && d_d1 == d_stages;
    // Modeled apps hash their JobStats into the digest — virtual timing —
    // which deeper pipelines legitimately improve; only functional result
    // digests must survive any depth unchanged.
    const bool results_equal = !c.spec.functional || d_dn == d_stages;
    char win_buf[32];
    std::snprintf(win_buf, sizeof(win_buf), "%+.1f%%", win);
    t.add_row({c.label, units::format_time(t_stages),
               units::format_time(t_d1), units::format_time(t_dn),
               std::to_string(c.depth), win_buf,
               d1_faithful && results_equal ? "ok" : "MISMATCH"});
    if (!d1_faithful) {
      std::fprintf(stderr,
                   "error: %s: graph depth 1 is not faithful to the stage "
                   "runner (t %.17g vs %.17g, digest %s vs %s)\n",
                   c.label, t_d1, t_stages, d_d1.c_str(), d_stages.c_str());
      return 1;
    }
    if (!results_equal) {
      std::fprintf(stderr,
                   "error: %s: depth %d changed the result digest "
                   "(%s vs %s)\n",
                   c.label, c.depth, d_dn.c_str(), d_stages.c_str());
      return 1;
    }
  }
  t.print();
  std::printf("\napps with >= 10%% overlap win: %d (acceptance: >= 2)\n",
              clear_wins);
  if (clear_wins < 2) {
    std::fprintf(stderr, "error: overlap win criterion not met\n");
    return 1;
  }
  return 0;
}
