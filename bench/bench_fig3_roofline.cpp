// Reproduces paper Figure 3: roofline plots of the Delta node's CPU and
// GPU with their ridge points. Prints the attainable-performance curves
// (log-spaced arithmetic-intensity sweep) as series a plotting tool can
// consume, plus the ridge points that drive Eq (8)'s three regimes.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "roofline/roofline.hpp"
#include "simdev/device_spec.hpp"

int main() {
  using namespace prs;
  bench::print_header(
      "Figure 3 — rooflines of the Delta node (CPU: 2x Xeon 5660, GPU: "
      "C2070)",
      "Attainable Gflop/s vs arithmetic intensity. 'GPU (staged)' pays "
      "PCI-E + DRAM serially (Eq (7)); 'GPU (resident)' is the cached-"
      "data roofline.");

  const roofline::RooflineModel cpu(simdev::delta_cpu());
  const roofline::RooflineModel gpu(simdev::delta_c2070());

  TextTable t({"AI [flops/byte]", "CPU [Gflops]", "GPU staged [Gflops]",
               "GPU resident [Gflops]"});
  for (double e = -3.0; e <= 14.01; e += 1.0) {
    const double ai = std::pow(2.0, e);
    t.add_row({TextTable::num(ai),
               TextTable::num(cpu.attainable_flops(ai) / 1e9, 4),
               TextTable::num(gpu.attainable_flops_staged(ai) / 1e9, 4),
               TextTable::num(gpu.attainable_flops(ai) / 1e9, 4)});
  }
  t.print();

  std::printf("\nRidge points (X axis of Figure 3):\n");
  TextTable r({"device", "ridge AI [flops/byte]", "peak"});
  r.add_row({"CPU (Acr)", TextTable::num(cpu.ridge_point(), 4),
             units::format_flops(cpu.spec().peak_flops)});
  r.add_row({"GPU staged (Agr)", TextTable::num(gpu.ridge_point_staged(), 4),
             units::format_flops(gpu.spec().peak_flops)});
  r.add_row({"GPU resident", TextTable::num(gpu.ridge_point(), 4),
             units::format_flops(gpu.spec().peak_flops)});
  r.print();

  std::printf(
      "\nShape checks: Acr << Agr (paper: 'Acr is usually smaller than "
      "Agr'), so an application's\nAI can fall in three regimes: A < Acr, "
      "Acr <= A < Agr, Agr <= A — the three cases of Eq (8).\n");
  return 0;
}
