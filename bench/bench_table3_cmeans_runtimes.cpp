// Reproduces paper Table 3: "Performance results of C-means with different
// runtimes" — MPI/GPU, PRS/GPU, MPI/CPU and Mahout/CPU on 4 fat nodes
// (Delta), sample sets of 200k/400k/800k points, D = 100, M = 10 clusters.
//
// Execution: ExecutionMode::kModeled on the calibrated Delta device models
// (see DESIGN.md "Substitutions" and core/calibration.hpp for the fitted
// host-overhead constants). The shape to reproduce: MPI/GPU fastest,
// PRS/GPU within a few x of it (framework overhead), MPI/CPU an order of
// magnitude slower, Mahout two orders of magnitude slower and only weakly
// size-dependent.
#include <cstdio>

#include "apps/cmeans.hpp"
#include "baselines/cmeans_baselines.hpp"
#include "bench_util.hpp"
#include "core/calibration.hpp"
#include "core/cluster.hpp"

namespace {

using namespace prs;

struct PaperRow {
  std::size_t points;
  double mpi_gpu, prs_gpu, mpi_cpu, mahout;
};

// Table 3 as published.
constexpr PaperRow kPaper[] = {
    {200000, 0.53, 2.31, 6.41, 541.3},
    {400000, 0.945, 3.81, 12.58, 563.1},
    {800000, 1.78, 5.31, 24.89, 687.5},
};

double prs_gpu_time(std::size_t points) {
  sim::Simulator sim;
  core::Cluster cluster(sim, 4, core::NodeConfig{});
  apps::CmeansParams params;
  params.clusters = 10;
  params.max_iterations = core::calib::kTable3Iterations;
  core::JobConfig cfg;
  cfg.use_cpu = false;  // Table 3's PRS row uses one GPU per node
  auto stats = apps::cmeans_prs_modeled(cluster, points, 100, params, cfg);
  return stats.elapsed;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 3 — C-means runtimes under different frameworks",
      "4 Delta nodes, 1 GPU/node; D=100, M=10, " +
          std::to_string(core::calib::kTable3Iterations) +
          " iterations (fitted; see calibration.hpp). Cells: measured "
          "seconds (error vs paper).");

  TextTable t({"#points", "MPI/GPU [s]", "PRS/GPU [s]", "MPI/CPU [s]",
               "Mahout/CPU [s]"});
  for (const auto& row : kPaper) {
    baselines::CmeansWorkload w;
    w.total_points = row.points;
    w.dims = 100;
    w.clusters = 10;
    w.iterations = core::calib::kTable3Iterations;
    w.nodes = 4;

    const double mpi_gpu = baselines::cmeans_mpi_gpu(w, core::NodeConfig{});
    const double prs_gpu = prs_gpu_time(row.points);
    const double mpi_cpu = baselines::cmeans_mpi_cpu(w, core::NodeConfig{});
    const double mahout = baselines::cmeans_mahout(w);

    t.add_row({std::to_string(row.points / 1000) + "k",
               bench::vs_paper(mpi_gpu, row.mpi_gpu),
               bench::vs_paper(prs_gpu, row.prs_gpu),
               bench::vs_paper(mpi_cpu, row.mpi_cpu),
               bench::vs_paper(mahout, row.mahout)});
  }
  t.print();

  std::printf(
      "\nShape checks: MPI/GPU < PRS/GPU < MPI/CPU << Mahout/CPU at every "
      "size;\nMahout is ~two orders of magnitude above PRS and only weakly "
      "size-dependent.\n");
  return 0;
}
