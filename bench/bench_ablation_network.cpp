// Ablation of the paper's future-work extension (a): Eq (8) "can also be
// extended by considering the bandwidth of the network in order to
// schedule communication intensive tasks".
//
// Workload: single-pass GEMV whose matrix is distributed from the master
// over the fabric before computing (time_input_distribution = true) and
// whose output is negligible — a pure input-streaming job. With P nodes
// fed from one master, each node effectively receives at B_net/(P-1)
// (the master's egress is shared), so the networked model predicts
//     node rate = min(Fc + Fg,  A * B_net/(P-1)).
// The sweep shows the compute/network crossover and that the model tracks
// the simulation in both regimes.
#include <cstdio>

#include "apps/gemv.hpp"
#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"

namespace {

using namespace prs;

constexpr int kNodes = 4;

/// Simulated per-node throughput for the distributed-input GEMV.
double measured_rate(double net_bandwidth) {
  sim::Simulator sim;
  simnet::FabricSpec fabric;
  fabric.link_bandwidth = net_bandwidth;
  fabric.latency = units::usec(50.0);
  core::Cluster cluster(sim, kNodes, core::NodeConfig{}, fabric);
  core::JobConfig cfg;
  cfg.charge_job_startup = false;
  cfg.time_input_distribution = true;
  auto s = apps::gemv_prs_modeled(cluster, 140000, 10000, cfg);
  return s.total_flops() / s.elapsed / kNodes;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — network-aware analytic model (paper future work a)",
      "GEMV (AI = 2), 4 nodes, matrix distributed from the master before "
      "computing. Predicted node rate = min(Fc+Fg, A*B_net/(P-1)).");

  const roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                          simdev::delta_c2070());
  const double ai = apps::gemv_arithmetic_intensity();

  TextTable t({"link bandwidth", "predicted [Gflops/node]",
               "network-bound?", "measured [Gflops/node]"});
  for (double gbps : {0.1, 0.5, 1.0, 4.0, 16.0, 64.0, 256.0}) {
    const double bw = units::gb_per_s(gbps);
    // Master egress shared by P-1 receivers.
    const auto pred = sched.workload_split_networked(
        ai, ai, /*staged=*/true, 1, bw / (kNodes - 1));
    t.add_row({units::format_bandwidth(bw),
               TextTable::num(pred.node_rate / 1e9, 4),
               pred.network_bound ? "yes" : "no",
               TextTable::num(measured_rate(bw) / 1e9, 4)});
  }
  t.print();

  const auto base = sched.workload_split(ai, true);
  const double crossover =
      (base.cpu_rate + base.gpu_rate) / ai * (kNodes - 1);
  std::printf(
      "\nPredicted compute/network crossover at B_net ~= (P-1)*(Fc+Fg)/A = "
      "%s.\nShape checks: measured rate ~linear in B_net below the "
      "crossover (within ~25%% of the model —\nthe receiver's ingress link "
      "and latency are outside it) and flat above it. The plateau sits at\n"
      "the *measured* GEMV rate (~22 Gflops/node, Figure 6) rather than the "
      "analytic Fc+Fg, the same\nanalytic-vs-profiled gap Table 5 "
      "documents.\n",
      prs::units::format_bandwidth(crossover).c_str());
  return 0;
}
