// Reproduces paper Table 5: "Work Load Distribution among GPU and CPU of
// Three Applications" on the Delta node — the CPU fraction p predicted by
// the analytic model (Eq (8)) versus p obtained by application profiling.
//
// Profiling follows the paper's §IV.B reasoning: for the iterative, cached
// apps (C-means, GMM) the measured backend rates come from device-level
// throughput ("the average arithmetic intensity ... depends on the
// bandwidth of DRAM and peak performance of GPU, rather than bandwidth of
// PCI-E bus"); for the single-pass GEMV the GPU rate includes its PCI-E
// staging, which *is* its bottleneck. p_profiled = Fc / (Fc + Fg).
#include <cmath>
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "bench_util.hpp"
#include "core/cluster.hpp"

namespace {

using namespace prs;

struct Measured {
  double fc = 0.0;  // CPU-backend rate, flops/s
  double fg = 0.0;  // GPU-backend rate, flops/s
  double p() const { return fc / (fc + fg); }
};

core::JobConfig backend_cfg(bool cpu) {
  core::JobConfig cfg;
  cfg.use_cpu = cpu;
  cfg.use_gpu = !cpu;
  cfg.charge_job_startup = false;  // steady-state rates
  return cfg;
}

/// Backend rate from one single-backend modeled run. cpu_busy accumulates
/// per-core busy seconds, so the node-level CPU rate divides it by the
/// core count; the GPU compute engine is a single server.
double rate_of(const core::Cluster& cluster, const core::JobStats& s,
               bool cpu, bool include_pcie) {
  if (cpu) {
    const double cores = cluster.node_config().cpu.cores;
    return s.cpu_flops / (s.cpu_busy / cores);
  }
  const double pcie_bw = cluster.node_config().gpu.pcie_bandwidth;
  const double busy =
      s.gpu_busy + (include_pcie ? s.pcie_bytes / pcie_bw : 0.0);
  return s.gpu_flops / busy;
}

Measured profile_cmeans() {
  apps::CmeansParams p;
  p.clusters = 100;  // Table 5 quotes AI = 5*M with M = 100
  p.max_iterations = 5;
  Measured m;
  for (bool cpu : {true, false}) {
    sim::Simulator sim;
    core::Cluster cluster(sim, 1, core::NodeConfig{});
    auto stats = apps::cmeans_prs_modeled(cluster, 200000, 100, p,
                                          backend_cfg(cpu));
    // Cached iterative app: device-level rates, PCI-E excluded (§IV.B).
    (cpu ? m.fc : m.fg) = rate_of(cluster, stats, cpu, false);
  }
  return m;
}

Measured profile_gmm() {
  apps::GmmParams p;
  p.components = 10;  // Table 5: AI = 11*M*D with M=10, D=60
  p.max_iterations = 5;
  Measured m;
  for (bool cpu : {true, false}) {
    sim::Simulator sim;
    core::Cluster cluster(sim, 1, core::NodeConfig{});
    auto stats =
        apps::gmm_prs_modeled(cluster, 100000, 60, p, backend_cfg(cpu));
    (cpu ? m.fc : m.fg) = rate_of(cluster, stats, cpu, false);
  }
  return m;
}

Measured profile_gemv() {
  Measured m;
  for (bool cpu : {true, false}) {
    sim::Simulator sim;
    core::Cluster cluster(sim, 1, core::NodeConfig{});
    auto stats =
        apps::gemv_prs_modeled(cluster, 35000, 10000, backend_cfg(cpu));
    // Staged single-pass app: the GPU rate includes PCI-E staging.
    (cpu ? m.fc : m.fg) = rate_of(cluster, stats, cpu, true);
  }
  return m;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 5 — workload distribution p between CPU and GPU (Delta node)",
      "p = CPU share of the input. Analytic: Eq (8) from the rooflines. "
      "Profiled: single-backend modeled runs.");

  const roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                          simdev::delta_c2070());

  struct Row {
    const char* app;
    double ai;
    bool staged;
    double paper_eq8, paper_prof;
    Measured measured;
  };
  Row rows[] = {
      {"GEMV", apps::gemv_arithmetic_intensity(), true, 0.973, 0.908,
       profile_gemv()},
      {"C-means", apps::cmeans_arithmetic_intensity(100), false, 0.112,
       0.119, profile_cmeans()},
      {"GMM", apps::gmm_arithmetic_intensity(10, 60), false, 0.112, 0.131,
       profile_gmm()},
  };

  TextTable t({"App", "AI", "p by Eq (8)", "p by profiling",
               "paper Eq(8)/prof", "|analytic-profiled| [pp]"});
  for (const auto& r : rows) {
    const double p_eq8 =
        sched.workload_split(r.ai, r.staged).cpu_fraction;
    const double p_prof = r.measured.p();
    char paper[48], delta[32];
    std::snprintf(paper, sizeof(paper), "%.1f%% / %.1f%%",
                  r.paper_eq8 * 100.0, r.paper_prof * 100.0);
    std::snprintf(delta, sizeof(delta), "%.1f",
                  std::fabs(p_eq8 - p_prof) * 100.0);
    t.add_row({r.app, TextTable::num(r.ai),
               bench::vs_paper(p_eq8 * 100.0, r.paper_eq8 * 100.0),
               bench::vs_paper(p_prof * 100.0, r.paper_prof * 100.0), paper,
               delta});
  }
  t.print();
  std::printf(
      "\nShape check (paper §IV.B): low-AI apps push work to the CPU, "
      "high-AI apps to the GPU;\nanalytic vs profiled p differ by < 10 "
      "percentage points for all three apps.\n");
  return 0;
}
