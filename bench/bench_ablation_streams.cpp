// Ablation of §III.B.3.b: CUDA-stream overlap and the MinBs granularity
// rule (Eqs (9)-(11)).
//
//  1. overlap percentage op (Eq (9)) across arithmetic intensities: streams
//     only pay off when data movement is a large share of task time;
//  2. a staged pipeline (copy+kernel per block) on Fermi (1 hardware work
//     queue) vs Kepler-style Hyper-Q (many queues), sweeping the stream
//     count: Hyper-Q overlaps copy with compute, Fermi serializes — the
//     paper's motivation for checking hardware queues before streaming;
//  3. block-size sweep for a BLAS3-like kernel with AI(Bs) = sqrt(Bs):
//     blocks below MinBs leave GPU throughput on the table, blocks above
//     it add nothing (Eq (11): "having a block size larger than MinBs
//     won't further increase the flops performance").
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "roofline/analytic_scheduler.hpp"
#include "simdev/device_spec.hpp"
#include "simdev/gpu_device.hpp"
#include "simtime/process.hpp"

namespace {

using namespace prs;

/// Issues `blocks` copy+kernel pairs round-robin over `streams` streams;
/// returns the virtual makespan.
double pipeline_makespan(const simdev::DeviceSpec& spec, int streams,
                         int blocks, double block_bytes, double ai) {
  sim::Simulator sim;
  simdev::GpuDevice gpu(sim, spec);
  std::vector<sim::Future<sim::Unit>> futs;
  for (int b = 0; b < blocks; ++b) {
    simdev::Stream& s = gpu.stream(b % streams);
    futs.push_back(s.memcpy_h2d(block_bytes));
    simdev::KernelDesc k;
    k.name = "block";
    k.workload.flops = block_bytes * ai;
    k.workload.mem_traffic = block_bytes;
    futs.push_back(s.launch(std::move(k)));
  }
  // Drive to completion (no process needed: futures resolve during run()).
  sim.run();
  (void)futs;
  return sim.now();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — stream overlap (Eq (9)) and MinBs granularity (Eq (11))",
      "C2070 (Fermi, 1 hw queue) vs K20-style Hyper-Q device model.");

  const roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                          simdev::delta_c2070());

  std::printf("\n-- overlap percentage op(AI), Eq (9) --\n");
  {
    TextTable t({"AI [flops/byte]", "op = transfer share", "streams pay off?"});
    for (double ai : {0.5, 2.0, 8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0}) {
      const double op = sched.overlap_percentage(ai);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f", op);
      t.add_row({TextTable::num(ai), buf, op > 0.2 ? "yes" : "no"});
    }
    t.print();
  }

  std::printf(
      "\n-- copy/compute overlap: makespan of 8 blocks (1 MiB each, AI "
      "tuned so copy ~= compute) --\n");
  {
    // Pick AI so kernel time ~= PCI-E copy time on the C2070 model:
    // copy = Bs/1.1e9; kernel = Bs*AI/1030e9 -> AI ~= 936.
    const double ai = 936.0;
    simdev::DeviceSpec fermi = simdev::delta_c2070();
    simdev::DeviceSpec hyperq = fermi;
    hyperq.name = "C2070 + Hyper-Q (hypothetical)";
    hyperq.hardware_queues = 32;

    TextTable t({"streams", "Fermi 1-queue [ms]", "Hyper-Q [ms]",
                 "Hyper-Q speedup"});
    for (int streams : {1, 2, 4, 8}) {
      const double tf =
          pipeline_makespan(fermi, streams, 8, 1 << 20, ai) * 1e3;
      const double th =
          pipeline_makespan(hyperq, streams, 8, 1 << 20, ai) * 1e3;
      char sp[16];
      std::snprintf(sp, sizeof(sp), "%.2fx", tf / th);
      t.add_row({std::to_string(streams), TextTable::num(tf, 4),
                 TextTable::num(th, 4), sp});
    }
    t.print();
    std::printf(
        "Expected: Hyper-Q approaches the ~2x bound of perfect copy/compute "
        "overlap as streams grow;\nFermi's single hardware queue serializes "
        "cross-stream work, so extra streams gain nothing.\n");
  }

  std::printf("\n-- MinBs block-size sweep, BLAS3-like AI(Bs) = sqrt(Bs) --\n");
  {
    roofline::AiOfBlock ai_fn = [](double bs) { return std::sqrt(bs); };
    const auto min_bs = sched.min_block_size(ai_fn, 1.0, 1e12);
    PRS_CHECK(min_bs.has_value(), "sqrt AI must cross the ridge");
    std::printf("MinBs = Fag^-1(Agr) = %.3g bytes (Agr = %.4g)\n\n", *min_bs,
                sched.gpu_roofline().ridge_point_staged());

    const double total = 32.0 * *min_bs;  // fixed data volume
    // Overlapped execution (4 streams, Hyper-Q device) so copy time hides
    // behind compute — the setting Eq (11) assumes. Below MinBs the blocks
    // are copy-bound (AI(Bs) under the ridge); at MinBs they reach peak.
    simdev::DeviceSpec dev = simdev::delta_c2070();
    dev.hardware_queues = 32;
    dev.kernel_launch_overhead = 0.0;  // isolate the roofline effect
    TextTable t({"block size / MinBs", "blocks", "achieved [Gflop/s]",
                 "vs peak"});
    for (double factor : {0.0625, 0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double bs = *min_bs * factor;
      const int blocks = static_cast<int>(total / bs);
      const double makespan =
          pipeline_makespan(dev, 4, blocks, bs, ai_fn(bs));
      const double flops = total * ai_fn(bs);
      char ratio[16];
      std::snprintf(ratio, sizeof(ratio), "%.1f%%",
                    flops / makespan / 1030e9 * 100.0);
      t.add_row({TextTable::num(factor), std::to_string(blocks),
                 TextTable::num(flops / makespan / 1e9, 4), ratio});
    }
    t.print();
    std::printf(
        "Expected: utilization climbs with block size while AI(Bs) < Agr "
        "(copy-bound), reaches ~peak at\nMinBs, and stays flat above it — "
        "Eq (11): larger blocks \"won't further increase the flops\n"
        "performance\".\n");
  }
  return 0;
}
