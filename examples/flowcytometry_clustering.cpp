// Flow-cytometry clustering — the paper's motivating application
// (§IV.A.1): fuzzy C-means over a lymphocyte-like data set on a GPU+CPU
// cluster, with the event matrix cached in GPU memory across iterations.
//
// Demonstrates:
//   * the iterative driver (loop-invariant data staged once, state
//     broadcast per iteration);
//   * clustering-quality metrics against ground truth;
//   * what co-processing buys: the same job GPU-only vs GPU+CPU.
//
//   $ ./examples/flowcytometry_clustering
#include <cstdio>

#include "apps/cmeans.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "data/dataset.hpp"
#include "data/metrics.hpp"

int main() {
  using namespace prs;

  // Synthetic stand-in for the FLAME Lymphocytes set: 20054 points, 4
  // dimensions, 5 overlapping populations, with ground-truth labels.
  Rng rng(7);
  const data::Dataset ds = data::generate_flame_like(rng);
  std::printf("data set: %zu points, %zu dims, %d true clusters\n\n",
              ds.size(), ds.dims(), ds.num_clusters);

  apps::CmeansParams params;
  params.clusters = 5;
  params.fuzziness = 2.0;
  params.max_iterations = 100;

  auto run = [&](bool with_cpu) {
    sim::Simulator sim;
    core::Cluster cluster(sim, /*nodes=*/4, core::NodeConfig{});
    core::JobConfig cfg;
    cfg.use_cpu = with_cpu;
    core::JobStats stats;
    auto res = apps::cmeans_prs(cluster, ds.points, params, cfg, &stats);
    return std::pair(res, stats);
  };

  auto [result, stats] = run(/*with_cpu=*/true);
  std::printf("converged after %d iterations, J_m = %.4g\n",
              result.iterations, result.objective);
  std::printf("avg cluster width:      %.4f\n",
              data::average_cluster_width(ds.points, result.assignment,
                                          result.centers));
  std::printf("overlap with reference: %.4f\n",
              data::overlap_with_reference(result.assignment, ds.labels));
  std::printf("adjusted Rand index:    %.4f\n\n",
              data::adjusted_rand_index(result.assignment, ds.labels));

  std::printf("cluster centers:\n");
  for (std::size_t j = 0; j < result.centers.rows(); ++j) {
    std::printf("  c%zu = (", j);
    for (std::size_t c = 0; c < result.centers.cols(); ++c) {
      std::printf("%s%+.2f", c ? ", " : "", result.centers(j, c));
    }
    std::printf(")\n");
  }

  // Co-processing pays off at production scale, not on a 20k-point demo
  // (where scheduling overheads dominate) — run the paper's Figure 6 shape
  // at 1M points/node in modeled mode to see it:
  auto modeled = [&](bool with_cpu) {
    sim::Simulator sim;
    core::Cluster cluster(sim, 4, core::NodeConfig{});
    core::JobConfig cfg;
    cfg.use_cpu = with_cpu;
    cfg.charge_job_startup = false;
    apps::CmeansParams big = params;
    big.clusters = 10;
    big.max_iterations = 10;
    return apps::cmeans_prs_modeled(cluster, 4000000, 100, big, cfg)
        .elapsed;
  };
  const double t_gpu = modeled(false);
  const double t_both = modeled(true);
  std::printf(
      "\nco-processing effect at paper scale (modeled, 1M pts/node x 4 "
      "nodes, 10 iterations):\n"
      "  GPU only : %s\n  GPU + CPU: %s  (%+.1f%%, paper Figure 6: "
      "+11.56%%)\n",
      units::format_time(t_gpu).c_str(), units::format_time(t_both).c_str(),
      (t_gpu / t_both - 1.0) * 100.0);
  std::printf(
      "\nThe event matrix is cached in GPU memory across iterations "
      "(paper §III.C.3), so\nper-iteration PCI-E traffic is only the "
      "intermediate partial sums:\n  PCI-E bytes per iteration: %s\n",
      units::format_bytes(stats.pcie_bytes / result.iterations).c_str());
  return 0;
}
