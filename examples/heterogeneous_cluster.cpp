// Inhomogeneous fat nodes — the paper's §III.B.3.a / future-work case.
//
// A mixed cluster: one Delta node (2x Xeon 5660 + C2070), one BigRed2 node
// (Opteron 6212 + K20), one Xeon-Phi node, and one CPU-only node. The
// master task scheduler weighs each node's Eq (8) capability when
// splitting the input, and each node gets its own CPU/GPU fraction from
// its own roofline.
//
//   $ ./examples/heterogeneous_cluster
#include <cstdio>

#include "apps/cmeans.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "data/dataset.hpp"

int main() {
  using namespace prs;

  core::NodeConfig delta;  // defaults
  core::NodeConfig bigred2;
  bigred2.cpu = simdev::bigred2_cpu();
  bigred2.gpu = simdev::bigred2_k20();
  core::NodeConfig phi;
  phi.gpu = simdev::xeon_phi_5110p();
  core::NodeConfig cpu_only;
  cpu_only.gpus_per_node = 0;

  sim::Simulator sim;
  core::Cluster cluster(sim, {delta, bigred2, phi, cpu_only});
  std::printf("cluster: %d nodes, homogeneous = %s\n\n", cluster.size(),
              cluster.homogeneous() ? "yes" : "no");

  // Per-node analytic decisions for a compute-bound app (C-means, AI=50):
  std::printf("%-28s %-14s %-12s\n", "node", "CPU share p", "capability");
  for (int r = 0; r < cluster.size(); ++r) {
    const auto& cfg = cluster.node_config(r);
    const bool has_gpu = cfg.gpus_per_node > 0;
    const auto split = cluster.scheduler(r).workload_split(
        50.0, /*gpu_staged=*/false, std::max(1, cfg.gpus_per_node));
    const double cap =
        split.cpu_rate + (has_gpu ? cfg.gpus_per_node * split.gpu_rate : 0.0);
    char p[16];
    std::snprintf(p, sizeof(p), "%.1f%%",
                  (has_gpu ? split.cpu_fraction : 1.0) * 100.0);
    std::printf("%-28s %-14s %s\n",
                (cfg.cpu.name + (has_gpu ? " + " + cfg.gpu.name : "")).c_str(),
                p, units::format_flops(cap).c_str());
  }

  // Run C-means across the mixed cluster and show where the flops landed.
  Rng rng(9);
  auto ds = data::generate_flame_like(rng, 8000);
  apps::CmeansParams params;
  params.clusters = 5;
  params.max_iterations = 40;
  core::JobStats stats;
  auto res = apps::cmeans_prs(cluster, ds.points, params, core::JobConfig{},
                              &stats);
  std::printf("\nC-means converged in %d iterations (J_m = %.4g)\n",
              res.iterations, res.objective);
  std::printf("\nper-node flops executed (capability-weighted split):\n");
  for (int r = 0; r < cluster.size(); ++r) {
    auto& node = cluster.node(r);
    std::printf("  node %d: CPU %10.3g flops   GPU %10.3g flops\n", r,
                node.cpu_flops(), node.gpu_flops());
  }
  std::printf("\nvirtual time: %s over %d iterations\n",
              units::format_time(stats.elapsed).c_str(), res.iterations);
  return 0;
}
