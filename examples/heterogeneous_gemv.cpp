// Heterogeneous GEMV — the paper's low-arithmetic-intensity showcase
// (§IV.A.3): y = A x with row-striped decomposition, where the analytic
// scheduler decides how much of A the CPU should keep.
//
// Demonstrates:
//   * reading the roofline model's reasoning (ridge points, regimes, p);
//   * that the runtime's actual flop placement follows the model;
//   * verification of the distributed result against the serial kernel.
//
//   $ ./examples/heterogeneous_gemv
#include <cstdio>

#include "apps/gemv.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "data/dataset.hpp"

int main() {
  using namespace prs;

  constexpr std::size_t kRows = 20000, kCols = 2048;
  Rng rng(11);
  const auto a = data::random_matrix(rng, kRows, kCols);
  const auto x = data::random_vector(rng, kCols);

  sim::Simulator sim;
  core::Cluster cluster(sim, /*nodes=*/2, core::NodeConfig{});

  // What does the analytic model say about GEMV on this hardware?
  const auto& sched = cluster.scheduler();
  const double ai = apps::gemv_arithmetic_intensity();
  const auto split = sched.workload_split(ai, /*gpu_staged=*/true);
  std::printf("roofline analysis (Delta node):\n");
  std::printf("  CPU ridge point Acr:        %.2f flops/byte\n",
              sched.cpu_roofline().ridge_point());
  std::printf("  GPU staged ridge point Agr: %.2f flops/byte\n",
              sched.gpu_roofline().ridge_point_staged());
  std::printf("  GEMV arithmetic intensity:  %.2f  -> below the CPU ridge: "
              "both devices bandwidth-bound\n", ai);
  std::printf("  effective rates Fc / Fg:    %s / %s\n",
              units::format_flops(split.cpu_rate).c_str(),
              units::format_flops(split.gpu_rate).c_str());
  std::printf("  Eq (8) CPU share p:         %.1f%%  (the GPU's PCI-E "
              "staging makes it the slow path)\n\n",
              split.cpu_fraction * 100.0);

  // Run it and check both correctness and that the placement followed p.
  // The demo matrix is small, so skip the one-time job-startup charge to
  // see the compute behaviour itself (benches at paper scale keep it).
  core::JobConfig cfg;
  cfg.charge_job_startup = false;
  core::JobStats stats;
  const auto y = apps::gemv_prs(cluster, a, x, cfg, &stats);

  const auto want = apps::gemv_serial(a, x);
  double max_err = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    max_err = std::max(max_err, std::abs(y[i] - want[i]));
  }
  std::printf("distributed result vs serial reference: max |err| = %.3g\n",
              max_err);
  std::printf("flops executed on CPU: %.3g (%.1f%% — model said %.1f%%)\n",
              stats.cpu_flops,
              stats.cpu_flops / stats.total_flops() * 100.0,
              split.cpu_fraction * 100.0);
  std::printf("virtual time: %s; PCI-E traffic: %s\n",
              units::format_time(stats.elapsed).c_str(),
              units::format_bytes(stats.pcie_bytes).c_str());

  // The headline of Figure 6: what a GPU-only run would cost instead.
  sim::Simulator sim2;
  core::Cluster gpu_cluster(sim2, 2, core::NodeConfig{});
  core::JobConfig gpu_only;
  gpu_only.use_cpu = false;
  gpu_only.charge_job_startup = false;
  core::JobStats gstats;
  (void)apps::gemv_prs(gpu_cluster, a, x, gpu_only, &gstats);
  std::printf(
      "\nGPU-only virtual time: %s -> co-processing speedup %.1fx "
      "(paper Figure 6: ~10x)\n",
      units::format_time(gstats.elapsed).c_str(),
      gstats.elapsed / stats.elapsed);
  return 0;
}
