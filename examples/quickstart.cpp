// Quickstart: run a MapReduce job on a simulated CPU+GPU cluster.
//
// Word count on four "fat nodes" (each a dual-Xeon host plus a Tesla C2070,
// the paper's Delta configuration): build a spec, run it, inspect results
// and the runtime's scheduling statistics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "apps/wordcount.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"

int main() {
  using namespace prs;

  // 1. A virtual clock drives everything; devices and network charge time
  //    against it, so results are deterministic and hardware-independent.
  sim::Simulator sim;

  // 2. Four homogeneous fat nodes with the paper's Delta hardware.
  core::Cluster cluster(sim, /*nodes=*/4, core::NodeConfig{});

  // 3. Some input data: a synthetic corpus of 2000 lines.
  Rng rng(42);
  auto corpus = std::make_shared<const apps::Corpus>(
      apps::generate_corpus(rng, 2000, 8, 100));

  // 4. Run the job. JobConfig defaults follow the paper: static scheduling
  //    with the CPU/GPU split from the roofline model (Eq (8)), two
  //    partitions per node, multiplier x cores CPU blocks.
  core::JobStats stats;
  auto counts = apps::wordcount_prs(cluster, corpus, core::JobConfig{},
                                    &stats);

  // 5. Results are real (the mappers actually counted):
  std::printf("distinct words: %zu\n", counts.size());
  long total = 0;
  for (const auto& [word, count] : counts) total += count;
  std::printf("total words:    %ld (= 2000 lines x 8 words)\n", total);
  std::printf("count of 'word0': %ld\n\n", counts.at("word0"));

  // 6. ... and so is the runtime's behaviour on the modeled hardware:
  std::printf("virtual job time:   %s\n",
              units::format_time(stats.elapsed).c_str());
  std::printf("map tasks:          %llu\n",
              static_cast<unsigned long long>(stats.map_tasks));
  std::printf("intermediate pairs: %llu\n",
              static_cast<unsigned long long>(stats.intermediate_pairs));
  std::printf("CPU / GPU flops:    %.2g / %.2g  (word count is bandwidth-"
              "bound:\n                    Eq (8) pushes ~97%% of it to the "
              "CPU)\n",
              stats.cpu_flops, stats.gpu_flops);
  std::printf("shuffled bytes:     %s\n",
              units::format_bytes(stats.network_bytes).c_str());
  return 0;
}
