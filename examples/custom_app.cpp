// Writing your own SPMD application against the PRS API.
//
// The scenario: per-sensor anomaly statistics over a stream of readings —
// map tasks scan a slice of readings and emit (sensor id, partial stats);
// the combiner merges partials; finalize turns them into z-score bounds.
// The cost model declares the app's arithmetic intensity so the analytic
// scheduler can place it (a bandwidth-bound scan -> mostly CPU).
//
// Also shows: dynamic (block-polling) scheduling and the iterative driver
// are available to custom apps exactly as to the built-in ones.
//
//   $ ./examples/custom_app
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"

namespace {

using namespace prs;

/// Per-sensor running statistics (mergeable).
struct SensorStats {
  long count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 1e300;
  double max = -1e300;

  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  double stddev() const {
    if (count < 2) return 0.0;
    const double m = mean();
    return std::sqrt(sum_sq / static_cast<double>(count) - m * m);
  }
};

struct Reading {
  int sensor;
  double value;
};

core::MapReduceSpec<int, SensorStats> sensor_spec(
    std::shared_ptr<const std::vector<Reading>> readings, int sensors) {
  core::MapReduceSpec<int, SensorStats> spec;
  spec.name = "sensor-stats";

  spec.cpu_map = [readings, sensors](const core::InputSlice& s,
                                     core::Emitter<int, SensorStats>& e) {
    // Pre-aggregate per task, like a built-in combiner.
    std::vector<SensorStats> acc(static_cast<std::size_t>(sensors));
    for (std::size_t i = s.begin; i < s.end; ++i) {
      const auto& r = (*readings)[i];
      auto& st = acc[static_cast<std::size_t>(r.sensor)];
      st.count++;
      st.sum += r.value;
      st.sum_sq += r.value * r.value;
      st.min = std::min(st.min, r.value);
      st.max = std::max(st.max, r.value);
    }
    for (int k = 0; k < sensors; ++k) {
      if (acc[static_cast<std::size_t>(k)].count > 0) {
        e.emit(k, acc[static_cast<std::size_t>(k)]);
      }
    }
  };
  // The GPU kernel would compute the same partials; reuse the C++ payload.
  spec.gpu_map = spec.cpu_map;

  spec.combine = [](const SensorStats& a, const SensorStats& b) {
    SensorStats out = a;
    out.count += b.count;
    out.sum += b.sum;
    out.sum_sq += b.sum_sq;
    out.min = std::min(a.min, b.min);
    out.max = std::max(a.max, b.max);
    return out;
  };

  // Cost model: a streaming scan, ~6 flops per 16-byte reading.
  spec.cpu_flops_per_item = 6.0;
  spec.gpu_flops_per_item = 6.0;
  spec.ai_cpu = 6.0 / 16.0;
  spec.ai_gpu = 6.0 / 16.0;
  spec.gpu_data_cached = false;
  spec.item_bytes = 16.0;
  spec.pair_bytes = sizeof(SensorStats);
  spec.reduce_flops_per_pair = 5.0;
  return spec;
}

}  // namespace

int main() {
  constexpr int kSensors = 24;
  constexpr std::size_t kReadings = 200000;

  // Sensor 17 misbehaves: a wider distribution with a shifted mean.
  Rng rng(123);
  auto readings = std::make_shared<std::vector<Reading>>();
  readings->reserve(kReadings);
  for (std::size_t i = 0; i < kReadings; ++i) {
    const int s = static_cast<int>(rng.uniform_index(kSensors));
    const double v =
        s == 17 ? rng.normal(4.0, 3.0) : rng.normal(0.0, 1.0);
    readings->push_back({s, v});
  }

  sim::Simulator sim;
  core::Cluster cluster(sim, /*nodes=*/4, core::NodeConfig{});
  auto spec = sensor_spec(readings, kSensors);

  // Custom apps can pick either scheduling strategy from §III.B.2.
  core::JobConfig cfg;
  cfg.scheduling = core::SchedulingMode::kDynamic;
  auto result = core::run_job(cluster, spec, cfg, readings->size());

  std::printf("%-8s %8s %9s %9s   flag\n", "sensor", "count", "mean",
              "stddev");
  for (const auto& [sensor, st] : result.output) {
    const bool anomalous = std::fabs(st.mean()) > 1.0 || st.stddev() > 2.0;
    std::printf("%-8d %8ld %9.3f %9.3f   %s\n", sensor, st.count, st.mean(),
                st.stddev(), anomalous ? "<-- anomalous" : "");
  }

  std::printf("\nvirtual time %s; %llu map tasks (dynamic polling), "
              "%.0f%% of flops on CPU\n",
              prs::units::format_time(result.stats.elapsed).c_str(),
              static_cast<unsigned long long>(result.stats.map_tasks),
              result.stats.cpu_flops / result.stats.total_flops() * 100.0);
  return 0;
}
