# Empty dependencies file for stats_pipeline_test.
# This may be replaced when dependencies are built.
