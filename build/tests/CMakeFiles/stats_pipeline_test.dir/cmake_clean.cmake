file(REMOVE_RECURSE
  "CMakeFiles/stats_pipeline_test.dir/stats_pipeline_test.cpp.o"
  "CMakeFiles/stats_pipeline_test.dir/stats_pipeline_test.cpp.o.d"
  "stats_pipeline_test"
  "stats_pipeline_test.pdb"
  "stats_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
