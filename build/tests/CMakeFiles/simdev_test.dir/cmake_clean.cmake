file(REMOVE_RECURSE
  "CMakeFiles/simdev_test.dir/simdev_test.cpp.o"
  "CMakeFiles/simdev_test.dir/simdev_test.cpp.o.d"
  "simdev_test"
  "simdev_test.pdb"
  "simdev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
