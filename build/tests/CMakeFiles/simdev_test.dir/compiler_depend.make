# Empty compiler generated dependencies file for simdev_test.
# This may be replaced when dependencies are built.
