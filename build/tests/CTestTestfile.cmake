# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simtime_test[1]_include.cmake")
include("/root/repo/build/tests/simdev_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/roofline_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/hetero_test[1]_include.cmake")
include("/root/repo/build/tests/fft_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stats_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
