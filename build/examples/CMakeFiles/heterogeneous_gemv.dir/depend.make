# Empty dependencies file for heterogeneous_gemv.
# This may be replaced when dependencies are built.
