file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_gemv.dir/heterogeneous_gemv.cpp.o"
  "CMakeFiles/heterogeneous_gemv.dir/heterogeneous_gemv.cpp.o.d"
  "heterogeneous_gemv"
  "heterogeneous_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
