# Empty compiler generated dependencies file for flowcytometry_clustering.
# This may be replaced when dependencies are built.
