file(REMOVE_RECURSE
  "CMakeFiles/flowcytometry_clustering.dir/flowcytometry_clustering.cpp.o"
  "CMakeFiles/flowcytometry_clustering.dir/flowcytometry_clustering.cpp.o.d"
  "flowcytometry_clustering"
  "flowcytometry_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowcytometry_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
