
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/heterogeneous_cluster.cpp" "examples/CMakeFiles/heterogeneous_cluster.dir/heterogeneous_cluster.cpp.o" "gcc" "examples/CMakeFiles/heterogeneous_cluster.dir/heterogeneous_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/prs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/prs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/prs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/prs_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/simdev/CMakeFiles/prs_simdev.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/prs_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/prs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
