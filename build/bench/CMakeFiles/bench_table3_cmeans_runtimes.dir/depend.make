# Empty dependencies file for bench_table3_cmeans_runtimes.
# This may be replaced when dependencies are built.
