# Empty compiler generated dependencies file for bench_ablation_region_alloc.
# This may be replaced when dependencies are built.
