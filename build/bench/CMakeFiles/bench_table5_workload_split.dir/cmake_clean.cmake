file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_workload_split.dir/bench_table5_workload_split.cpp.o"
  "CMakeFiles/bench_table5_workload_split.dir/bench_table5_workload_split.cpp.o.d"
  "bench_table5_workload_split"
  "bench_table5_workload_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_workload_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
