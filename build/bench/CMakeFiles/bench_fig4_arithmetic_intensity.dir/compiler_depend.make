# Empty compiler generated dependencies file for bench_fig4_arithmetic_intensity.
# This may be replaced when dependencies are built.
