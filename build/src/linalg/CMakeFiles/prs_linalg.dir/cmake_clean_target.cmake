file(REMOVE_RECURSE
  "libprs_linalg.a"
)
