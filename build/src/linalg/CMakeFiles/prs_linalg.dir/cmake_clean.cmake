file(REMOVE_RECURSE
  "CMakeFiles/prs_linalg.dir/fft.cpp.o"
  "CMakeFiles/prs_linalg.dir/fft.cpp.o.d"
  "libprs_linalg.a"
  "libprs_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
