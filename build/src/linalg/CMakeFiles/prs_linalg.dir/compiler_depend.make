# Empty compiler generated dependencies file for prs_linalg.
# This may be replaced when dependencies are built.
