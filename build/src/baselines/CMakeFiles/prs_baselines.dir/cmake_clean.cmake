file(REMOVE_RECURSE
  "CMakeFiles/prs_baselines.dir/cmeans_baselines.cpp.o"
  "CMakeFiles/prs_baselines.dir/cmeans_baselines.cpp.o.d"
  "libprs_baselines.a"
  "libprs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
