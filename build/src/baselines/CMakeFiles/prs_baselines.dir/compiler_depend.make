# Empty compiler generated dependencies file for prs_baselines.
# This may be replaced when dependencies are built.
