file(REMOVE_RECURSE
  "libprs_baselines.a"
)
