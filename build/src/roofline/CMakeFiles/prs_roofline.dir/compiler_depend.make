# Empty compiler generated dependencies file for prs_roofline.
# This may be replaced when dependencies are built.
