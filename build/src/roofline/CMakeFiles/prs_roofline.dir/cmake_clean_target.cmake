file(REMOVE_RECURSE
  "libprs_roofline.a"
)
