file(REMOVE_RECURSE
  "CMakeFiles/prs_roofline.dir/analytic_scheduler.cpp.o"
  "CMakeFiles/prs_roofline.dir/analytic_scheduler.cpp.o.d"
  "CMakeFiles/prs_roofline.dir/roofline.cpp.o"
  "CMakeFiles/prs_roofline.dir/roofline.cpp.o.d"
  "libprs_roofline.a"
  "libprs_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
