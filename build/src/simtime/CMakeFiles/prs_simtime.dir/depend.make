# Empty dependencies file for prs_simtime.
# This may be replaced when dependencies are built.
