file(REMOVE_RECURSE
  "libprs_simtime.a"
)
