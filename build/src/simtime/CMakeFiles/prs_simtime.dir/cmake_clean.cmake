file(REMOVE_RECURSE
  "CMakeFiles/prs_simtime.dir/simulator.cpp.o"
  "CMakeFiles/prs_simtime.dir/simulator.cpp.o.d"
  "libprs_simtime.a"
  "libprs_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
