# Empty compiler generated dependencies file for prs_core.
# This may be replaced when dependencies are built.
