file(REMOVE_RECURSE
  "CMakeFiles/prs_core.dir/cluster.cpp.o"
  "CMakeFiles/prs_core.dir/cluster.cpp.o.d"
  "CMakeFiles/prs_core.dir/fat_node.cpp.o"
  "CMakeFiles/prs_core.dir/fat_node.cpp.o.d"
  "CMakeFiles/prs_core.dir/job.cpp.o"
  "CMakeFiles/prs_core.dir/job.cpp.o.d"
  "libprs_core.a"
  "libprs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
