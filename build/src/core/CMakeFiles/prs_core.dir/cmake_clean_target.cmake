file(REMOVE_RECURSE
  "libprs_core.a"
)
