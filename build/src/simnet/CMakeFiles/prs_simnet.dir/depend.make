# Empty dependencies file for prs_simnet.
# This may be replaced when dependencies are built.
