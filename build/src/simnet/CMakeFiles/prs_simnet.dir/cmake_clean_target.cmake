file(REMOVE_RECURSE
  "libprs_simnet.a"
)
