file(REMOVE_RECURSE
  "CMakeFiles/prs_simnet.dir/fabric.cpp.o"
  "CMakeFiles/prs_simnet.dir/fabric.cpp.o.d"
  "libprs_simnet.a"
  "libprs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
