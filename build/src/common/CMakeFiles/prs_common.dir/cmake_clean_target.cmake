file(REMOVE_RECURSE
  "libprs_common.a"
)
