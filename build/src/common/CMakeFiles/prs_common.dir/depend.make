# Empty dependencies file for prs_common.
# This may be replaced when dependencies are built.
