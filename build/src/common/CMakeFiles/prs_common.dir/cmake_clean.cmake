file(REMOVE_RECURSE
  "CMakeFiles/prs_common.dir/error.cpp.o"
  "CMakeFiles/prs_common.dir/error.cpp.o.d"
  "CMakeFiles/prs_common.dir/log.cpp.o"
  "CMakeFiles/prs_common.dir/log.cpp.o.d"
  "CMakeFiles/prs_common.dir/rng.cpp.o"
  "CMakeFiles/prs_common.dir/rng.cpp.o.d"
  "CMakeFiles/prs_common.dir/stats.cpp.o"
  "CMakeFiles/prs_common.dir/stats.cpp.o.d"
  "CMakeFiles/prs_common.dir/table.cpp.o"
  "CMakeFiles/prs_common.dir/table.cpp.o.d"
  "CMakeFiles/prs_common.dir/units.cpp.o"
  "CMakeFiles/prs_common.dir/units.cpp.o.d"
  "libprs_common.a"
  "libprs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
