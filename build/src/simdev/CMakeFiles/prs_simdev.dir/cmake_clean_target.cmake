file(REMOVE_RECURSE
  "libprs_simdev.a"
)
