
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdev/cpu_device.cpp" "src/simdev/CMakeFiles/prs_simdev.dir/cpu_device.cpp.o" "gcc" "src/simdev/CMakeFiles/prs_simdev.dir/cpu_device.cpp.o.d"
  "/root/repo/src/simdev/device_spec.cpp" "src/simdev/CMakeFiles/prs_simdev.dir/device_spec.cpp.o" "gcc" "src/simdev/CMakeFiles/prs_simdev.dir/device_spec.cpp.o.d"
  "/root/repo/src/simdev/gpu_device.cpp" "src/simdev/CMakeFiles/prs_simdev.dir/gpu_device.cpp.o" "gcc" "src/simdev/CMakeFiles/prs_simdev.dir/gpu_device.cpp.o.d"
  "/root/repo/src/simdev/region.cpp" "src/simdev/CMakeFiles/prs_simdev.dir/region.cpp.o" "gcc" "src/simdev/CMakeFiles/prs_simdev.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/prs_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
