# Empty compiler generated dependencies file for prs_simdev.
# This may be replaced when dependencies are built.
