file(REMOVE_RECURSE
  "CMakeFiles/prs_simdev.dir/cpu_device.cpp.o"
  "CMakeFiles/prs_simdev.dir/cpu_device.cpp.o.d"
  "CMakeFiles/prs_simdev.dir/device_spec.cpp.o"
  "CMakeFiles/prs_simdev.dir/device_spec.cpp.o.d"
  "CMakeFiles/prs_simdev.dir/gpu_device.cpp.o"
  "CMakeFiles/prs_simdev.dir/gpu_device.cpp.o.d"
  "CMakeFiles/prs_simdev.dir/region.cpp.o"
  "CMakeFiles/prs_simdev.dir/region.cpp.o.d"
  "libprs_simdev.a"
  "libprs_simdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_simdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
