file(REMOVE_RECURSE
  "libprs_data.a"
)
