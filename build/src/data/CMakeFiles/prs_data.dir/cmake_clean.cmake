file(REMOVE_RECURSE
  "CMakeFiles/prs_data.dir/dataset.cpp.o"
  "CMakeFiles/prs_data.dir/dataset.cpp.o.d"
  "CMakeFiles/prs_data.dir/metrics.cpp.o"
  "CMakeFiles/prs_data.dir/metrics.cpp.o.d"
  "libprs_data.a"
  "libprs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
