# Empty dependencies file for prs_data.
# This may be replaced when dependencies are built.
