# Empty compiler generated dependencies file for prs_apps.
# This may be replaced when dependencies are built.
