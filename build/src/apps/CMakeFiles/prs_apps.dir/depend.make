# Empty dependencies file for prs_apps.
# This may be replaced when dependencies are built.
