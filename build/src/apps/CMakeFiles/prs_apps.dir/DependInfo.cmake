
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cmeans.cpp" "src/apps/CMakeFiles/prs_apps.dir/cmeans.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/cmeans.cpp.o.d"
  "/root/repo/src/apps/dgemm.cpp" "src/apps/CMakeFiles/prs_apps.dir/dgemm.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/dgemm.cpp.o.d"
  "/root/repo/src/apps/fftbatch.cpp" "src/apps/CMakeFiles/prs_apps.dir/fftbatch.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/fftbatch.cpp.o.d"
  "/root/repo/src/apps/gemv.cpp" "src/apps/CMakeFiles/prs_apps.dir/gemv.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/gemv.cpp.o.d"
  "/root/repo/src/apps/gmm.cpp" "src/apps/CMakeFiles/prs_apps.dir/gmm.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/gmm.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/prs_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/apps/CMakeFiles/prs_apps.dir/stencil.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/stencil.cpp.o.d"
  "/root/repo/src/apps/wordcount.cpp" "src/apps/CMakeFiles/prs_apps.dir/wordcount.cpp.o" "gcc" "src/apps/CMakeFiles/prs_apps.dir/wordcount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/prs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/prs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/prs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/prs_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/simdev/CMakeFiles/prs_simdev.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/prs_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
