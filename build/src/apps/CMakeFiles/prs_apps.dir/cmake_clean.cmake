file(REMOVE_RECURSE
  "CMakeFiles/prs_apps.dir/cmeans.cpp.o"
  "CMakeFiles/prs_apps.dir/cmeans.cpp.o.d"
  "CMakeFiles/prs_apps.dir/dgemm.cpp.o"
  "CMakeFiles/prs_apps.dir/dgemm.cpp.o.d"
  "CMakeFiles/prs_apps.dir/fftbatch.cpp.o"
  "CMakeFiles/prs_apps.dir/fftbatch.cpp.o.d"
  "CMakeFiles/prs_apps.dir/gemv.cpp.o"
  "CMakeFiles/prs_apps.dir/gemv.cpp.o.d"
  "CMakeFiles/prs_apps.dir/gmm.cpp.o"
  "CMakeFiles/prs_apps.dir/gmm.cpp.o.d"
  "CMakeFiles/prs_apps.dir/kmeans.cpp.o"
  "CMakeFiles/prs_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/prs_apps.dir/stencil.cpp.o"
  "CMakeFiles/prs_apps.dir/stencil.cpp.o.d"
  "CMakeFiles/prs_apps.dir/wordcount.cpp.o"
  "CMakeFiles/prs_apps.dir/wordcount.cpp.o.d"
  "libprs_apps.a"
  "libprs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
