file(REMOVE_RECURSE
  "libprs_apps.a"
)
