file(REMOVE_RECURSE
  "CMakeFiles/prs_cli.dir/cli_options.cpp.o"
  "CMakeFiles/prs_cli.dir/cli_options.cpp.o.d"
  "libprs_cli.a"
  "libprs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
