file(REMOVE_RECURSE
  "libprs_cli.a"
)
