# Empty dependencies file for prs_cli.
# This may be replaced when dependencies are built.
