# Empty compiler generated dependencies file for prs_run.
# This may be replaced when dependencies are built.
