file(REMOVE_RECURSE
  "CMakeFiles/prs_run.dir/prs_run.cpp.o"
  "CMakeFiles/prs_run.dir/prs_run.cpp.o.d"
  "prs_run"
  "prs_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
